(* RNS-CKKS. See rns_ckks.mli for the external story.

   Conventions:
   - ciphertext components are kept in NTT form; rescale / automorphism /
     key-switch digits go through coefficient form as needed;
   - a level-l object lives over the prime prefix q_0..q_{l-1};
   - key-switching keys carry one (b_i, a_i) pair per chain prime over the
     extended basis (all chain primes + the special prime p):
       b_i = -a_i*s + e_i + w_i*s'   with   w_i = p mod q_i on component i,
                                            0 on every other component.
     Accumulating digit_i(d) * ksk_i then dividing by p (drop the special
     component with rounding) yields d*s' + small noise mod Q. *)

module Fastring = Rq (* the unified-ring module: carries the fast-path toggle *)
module Rq = Rq_rns
module Bigint = Chet_bigint.Bigint
module Herr = Chet_herr.Herr

let err ~op e = Herr.raise_err ~backend:"rns_ckks" ~op e

type params = { n : int; coeff_modulus_bits : int; num_coeff_primes : int; sigma : float }

let default_params ?(n = 8192) ?(bits = 30) ~num_coeff_primes () =
  { n; coeff_modulus_bits = bits; num_coeff_primes; sigma = 3.2 }

type context = {
  params : params;
  rq : Rq.ctx;
  enc : Encoding.ctx;
  num_coeff : int;
  special_index : int;
}

let make_context params =
  if params.num_coeff_primes < 1 then invalid_arg "Rns_ckks.make_context: need at least one prime";
  let primes =
    Modarith.gen_ntt_primes ~bits:params.coeff_modulus_bits ~modulus_of:(2 * params.n)
      ~count:(params.num_coeff_primes + 1)
  in
  (* primes are generated in descending order; SEAL places the largest as the
     special prime for the smallest key-switching noise. *)
  let special = primes.(0) in
  let chain = Array.sub primes 1 params.num_coeff_primes in
  (* chain order: q_0 .. q_{L-1}; rescale drops from the end *)
  let all = Array.append chain [| special |] in
  {
    params;
    rq = Rq.make_ctx ~n:params.n ~primes:all;
    enc = Encoding.make ~n:params.n;
    num_coeff = params.num_coeff_primes;
    special_index = params.num_coeff_primes;
  }

let params ctx = ctx.params
let slot_count ctx = ctx.params.n / 2
let coeff_primes ctx = Array.sub (Rq.ctx_primes ctx.rq) 0 ctx.num_coeff
let special_prime ctx = (Rq.ctx_primes ctx.rq).(ctx.special_index)
let max_level ctx = ctx.num_coeff
let encoding ctx = ctx.enc
let rq_ctx ctx = ctx.rq

let total_modulus_bits ctx =
  let bits = ref 0.0 in
  Array.iter (fun p -> bits := !bits +. (log (float_of_int p) /. log 2.0)) (Rq.ctx_primes ctx.rq);
  int_of_float (Float.ceil !bits)

let basis_of_level l = Array.init l (fun i -> i)
let key_basis ctx l = Array.append (basis_of_level l) [| ctx.special_index |]
let full_basis ctx = key_basis ctx ctx.num_coeff

type secret_key = { s : Rq.t (* full basis, NTT *) }
type public_key = { pk0 : Rq.t; pk1 : Rq.t (* top-level basis, NTT *) }
type kswitch_key = { pairs : (Rq.t * Rq.t) array (* full basis, NTT *) }

type keys = {
  public : public_key;
  relin : kswitch_key;
  rotation : (int, kswitch_key) Hashtbl.t;
}

type plaintext = { poly : Rq.t; pt_scale : float; pt_level : int }
type ciphertext = { c0 : Rq.t; c1 : Rq.t; level : int; scale : float }

let level_of ct = ct.level
let scale_of ct = ct.scale

(* --- sampling helpers --- *)

let sample_uniform_ntt ctx rng basis =
  (* the NTT is a bijection, so sampling residues directly in NTT form is
     uniform in the ring *)
  let primes = Rq.ctx_primes ctx.rq in
  let comps = Array.map (fun i -> Sampling.uniform_poly rng ~modulus:primes.(i) ctx.params.n) basis in
  Rq.of_components ~basis ~comps ~ntt:true

let sample_gaussian ctx rng basis =
  let e = Sampling.gaussian rng ~sigma:ctx.params.sigma ctx.params.n in
  Rq.to_ntt ctx.rq (Rq.of_centered_coeffs ctx.rq basis e)

let sample_ternary_ntt ctx rng basis =
  let s = Sampling.ternary rng ctx.params.n in
  Rq.to_ntt ctx.rq (Rq.of_centered_coeffs ctx.rq basis s)

(* --- key generation --- *)

let keygen_kswitch ctx rng (sk : secret_key) (target : Rq.t) : kswitch_key =
  let basis = full_basis ctx in
  let primes = Rq.ctx_primes ctx.rq in
  let special = primes.(ctx.special_index) in
  let pairs =
    Array.init ctx.num_coeff (fun i ->
        let a = sample_uniform_ntt ctx rng basis in
        let e = sample_gaussian ctx rng basis in
        let w_target =
          (* w_i * s': only component i is non-zero, scaled by p mod q_i *)
          Rq.scale_component ctx.rq target ~basis_index:i ~scalar:(special mod primes.(i))
        in
        let b = Rq.add ctx.rq (Rq.add ctx.rq (Rq.neg ctx.rq (Rq.mul ctx.rq a sk.s)) e) w_target in
        (b, a))
  in
  { pairs }

let keygen ctx rng =
  let basis_full = full_basis ctx in
  let sk = { s = sample_ternary_ntt ctx rng basis_full } in
  let top = basis_of_level ctx.num_coeff in
  let s_top = Rq.subset sk.s top in
  let a = sample_uniform_ntt ctx rng top in
  let e = sample_gaussian ctx rng top in
  let pk0 = Rq.add ctx.rq (Rq.neg ctx.rq (Rq.mul ctx.rq a s_top)) e in
  let s_sq = Rq.mul ctx.rq sk.s sk.s in
  let relin = keygen_kswitch ctx rng sk s_sq in
  (sk, { public = { pk0; pk1 = a }; relin; rotation = Hashtbl.create 16 })

let galois_of_rotation ctx r = Encoding.galois_element ctx.enc r

let add_rotation_key ctx rng sk keys r =
  let g = galois_of_rotation ctx r in
  if not (Hashtbl.mem keys.rotation g) then begin
    let s_coeff = Rq.from_ntt ctx.rq sk.s in
    let s_g = Rq.to_ntt ctx.rq (Rq.automorphism ctx.rq s_coeff ~g) in
    Hashtbl.replace keys.rotation g (keygen_kswitch ctx rng sk s_g)
  end

let add_power_of_two_rotation_keys ctx rng sk keys =
  let slots = slot_count ctx in
  let k = ref 1 in
  while !k < slots do
    add_rotation_key ctx rng sk keys !k;
    add_rotation_key ctx rng sk keys (slots - !k) (* right rotation by k *);
    k := !k lsl 1
  done

let rotation_key_count keys = Hashtbl.length keys.rotation

(* --- encoding --- *)

let encode ctx ~level ~scale (z : Complexv.t) =
  if level < 1 || level > ctx.num_coeff then
    err ~op:"encode"
      (Herr.Invalid_op
         { reason = Printf.sprintf "level %d outside [1, %d]" level ctx.num_coeff });
  let coeffs = Encoding.encode ctx.enc ~scale ~re:z.Complexv.re ~im:z.Complexv.im in
  let ints =
    Array.map
      (fun c ->
        if Float.abs c > 4.0e18 then
          err ~op:"encode"
            (Herr.Numeric_blowup { slot = -1; value = c })
            (* coefficient overflow: scale too large for the message *);
        int_of_float (Float.round c))
      coeffs
  in
  let poly = Rq.to_ntt ctx.rq (Rq.of_centered_coeffs ctx.rq (basis_of_level level) ints) in
  { poly; pt_scale = scale; pt_level = level }

let encode_real ctx ~level ~scale values = encode ctx ~level ~scale (Complexv.of_real values)

let decode ctx pt =
  let coeffs = Rq.to_centered_bigint_coeffs ctx.rq (Rq.from_ntt ctx.rq pt.poly) in
  let floats = Array.map Bigint.to_float coeffs in
  let re, im = Encoding.decode ctx.enc ~scale:pt.pt_scale floats in
  Complexv.of_complex re im

(* --- encryption --- *)

let encrypt ctx rng (pk : public_key) pt =
  if pt.pt_level <> ctx.num_coeff then
    err ~op:"encrypt" (Herr.Level_mismatch { expected = ctx.num_coeff; got = pt.pt_level });
  let basis = basis_of_level ctx.num_coeff in
  let u = sample_ternary_ntt ctx rng basis in
  let e0 = sample_gaussian ctx rng basis in
  let e1 = sample_gaussian ctx rng basis in
  let c0 = Rq.add ctx.rq (Rq.add ctx.rq (Rq.mul ctx.rq pk.pk0 u) e0) pt.poly in
  let c1 = Rq.add ctx.rq (Rq.mul ctx.rq pk.pk1 u) e1 in
  { c0; c1; level = ctx.num_coeff; scale = pt.pt_scale }

let decrypt ctx sk ct =
  let s_l = Rq.subset sk.s (basis_of_level ct.level) in
  let m = Rq.add ctx.rq ct.c0 (Rq.mul ctx.rq ct.c1 s_l) in
  { poly = m; pt_scale = ct.scale; pt_level = ct.level }

(* --- arithmetic --- *)

(* kernels equalise scales only approximately (integer mask factors, RNS
   rescaling drift); [Herr.scale_tolerance] relative slack admits value
   error well below the scheme noise floor *)
let scales_compatible = Herr.scales_compatible

let check_binop op a b =
  if a.level <> b.level then err ~op (Herr.Level_mismatch { expected = a.level; got = b.level });
  if not (scales_compatible a.scale b.scale) then
    err ~op (Herr.Scale_mismatch { expected = a.scale; got = b.scale })

let add ctx a b =
  check_binop "add" a b;
  { a with c0 = Rq.add ctx.rq a.c0 b.c0; c1 = Rq.add ctx.rq a.c1 b.c1 }

let sub ctx a b =
  check_binop "sub" a b;
  { a with c0 = Rq.sub ctx.rq a.c0 b.c0; c1 = Rq.sub ctx.rq a.c1 b.c1 }

let negate ctx a = { a with c0 = Rq.neg ctx.rq a.c0; c1 = Rq.neg ctx.rq a.c1 }

let check_plain op ct pt =
  if ct.level <> pt.pt_level then
    err ~op (Herr.Level_mismatch { expected = ct.level; got = pt.pt_level })

let add_plain ctx ct pt =
  check_plain "add_plain" ct pt;
  if not (scales_compatible ct.scale pt.pt_scale) then
    err ~op:"add_plain" (Herr.Scale_mismatch { expected = ct.scale; got = pt.pt_scale });
  { ct with c0 = Rq.add ctx.rq ct.c0 pt.poly }

let sub_plain ctx ct pt =
  check_plain "sub_plain" ct pt;
  if not (scales_compatible ct.scale pt.pt_scale) then
    err ~op:"sub_plain" (Herr.Scale_mismatch { expected = ct.scale; got = pt.pt_scale });
  { ct with c0 = Rq.sub ctx.rq ct.c0 pt.poly }

let mul_plain ctx ct pt =
  check_plain "mul_plain" ct pt;
  {
    ct with
    c0 = Rq.mul ctx.rq ct.c0 pt.poly;
    c1 = Rq.mul ctx.rq ct.c1 pt.poly;
    scale = ct.scale *. pt.pt_scale;
  }

let mul_scalar ctx ct x ~scale =
  let s = int_of_float (Float.round (x *. scale)) in
  {
    ct with
    c0 = Rq.mul_scalar ctx.rq ct.c0 s;
    c1 = Rq.mul_scalar ctx.rq ct.c1 s;
    scale = ct.scale *. scale;
  }

let add_scalar ctx ct x =
  let c = int_of_float (Float.round (x *. ct.scale)) in
  let const = Array.make ctx.params.n 0 in
  const.(0) <- c;
  let p = Rq.to_ntt ctx.rq (Rq.of_centered_coeffs ctx.rq (basis_of_level ct.level) const) in
  { ct with c0 = Rq.add ctx.rq ct.c0 p }

(* --- key switching --- *)

(* The inner loop of every mul / rotation: for each of the [level] digits,
   broadcast the [0, q_i) residue vector into the extended key basis, NTT
   it there, and accumulate digit * (b_i, a_i). That is level * (level+1)
   NTTs per key switch — the single hottest kernel of the scheme — so it
   runs over raw residue buffers with in-place accumulators, fanned out
   across {!Kpool} domains per key-basis channel (channels are
   independent: channel [jk] only touches its own acc/tmp buffers). *)
let keyswitch ctx level (d : Rq.t) (key : kswitch_key) : Rq.t * Rq.t =
  let d = Rq.from_ntt ctx.rq d in
  let kb = key_basis ctx level in
  let nb = Array.length kb in
  let n = ctx.params.n in
  let primes = Rq.ctx_primes ctx.rq in
  let fast = Fastring.fast_ring_enabled () in
  let acc0 = Array.init nb (fun _ -> Rvec.zeroed n) in
  let acc1 = Array.init nb (fun _ -> Rvec.zeroed n) in
  Kpool.run nb (fun jk ->
      let pj = primes.(kb.(jk)) in
      let tbl = Rq.raw_ntt_table ctx.rq kb.(jk) in
      (* slot of prime kb.(jk) in the keys' full basis: chain primes sit at
         their own index, the special prime after the whole chain *)
      let kslot = if jk < level then jk else ctx.num_coeff in
      let tmp = Rvec.create n in
      let a0 = acc0.(jk) and a1 = acc1.(jk) in
      for i = 0 to level - 1 do
        let digit = Rq.raw_comp d i in
        if fast then Rvec.broadcast_mod_into tmp digit pj
        else Rvec.broadcast_mod_ref_into tmp digit pj;
        Ntt.forward_buf tbl tmp;
        let b_i, a_i = key.pairs.(i) in
        if fast then begin
          Rvec.pointwise_mac_into a0 tmp (Rq.raw_comp b_i kslot) pj;
          Rvec.pointwise_mac_into a1 tmp (Rq.raw_comp a_i kslot) pj
        end
        else begin
          Rvec.pointwise_mac_ref_into a0 tmp (Rq.raw_comp b_i kslot) pj;
          Rvec.pointwise_mac_ref_into a1 tmp (Rq.raw_comp a_i kslot) pj
        end
      done);
  let assemble comps = Rq.unsafe_of_bufs ~basis:(Array.copy kb) ~comps ~ntt:true in
  let down t = Rq.to_ntt ctx.rq (Rq.drop_last ctx.rq (Rq.from_ntt ctx.rq t) ~rounded:true) in
  (down (assemble acc0), down (assemble acc1))

let mul ctx keys a b =
  if a.level <> b.level then err ~op:"mul" (Herr.Level_mismatch { expected = a.level; got = b.level });
  let d0 = Rq.mul ctx.rq a.c0 b.c0 in
  let d1 = Rq.add ctx.rq (Rq.mul ctx.rq a.c0 b.c1) (Rq.mul ctx.rq a.c1 b.c0) in
  let d2 = Rq.mul ctx.rq a.c1 b.c1 in
  let k0, k1 = keyswitch ctx a.level d2 keys.relin in
  { c0 = Rq.add ctx.rq d0 k0; c1 = Rq.add ctx.rq d1 k1; level = a.level; scale = a.scale *. b.scale }

(* --- rescaling --- *)

let max_rescale ctx ct ub =
  let primes = Rq.ctx_primes ctx.rq in
  let prod = ref 1 in
  let l = ref ct.level in
  let continue_loop = ref true in
  while !continue_loop && !l > 1 do
    let q = primes.(!l - 1) in
    if !prod <= ub / q && !prod * q <= ub then begin
      prod := !prod * q;
      decr l
    end
    else continue_loop := false
  done;
  !prod

let rescale ctx ct x =
  if x = 1 then ct
  else begin
    let primes = Rq.ctx_primes ctx.rq in
    let c0 = ref (Rq.from_ntt ctx.rq ct.c0) and c1 = ref (Rq.from_ntt ctx.rq ct.c1) in
    let level = ref ct.level and x = ref x and scale = ref ct.scale in
    let requested = !x in
    while !x > 1 do
      if !level < 1 then
        err ~op:"rescale" (Herr.Modulus_exhausted { level = ct.level; requested });
      let q = primes.(!level - 1) in
      if !x mod q <> 0 then
        err ~op:"rescale"
          (Herr.Illegal_rescale
             {
               divisor = requested;
               reason = Printf.sprintf "not a product of the next chain primes (next is %d)" q;
             });
      c0 := Rq.drop_last ctx.rq !c0 ~rounded:true;
      c1 := Rq.drop_last ctx.rq !c1 ~rounded:true;
      decr level;
      scale := !scale /. float_of_int q;
      x := !x / q
    done;
    { c0 = Rq.to_ntt ctx.rq !c0; c1 = Rq.to_ntt ctx.rq !c1; level = !level; scale = !scale }
  end

let mod_switch_to_level ctx ct target =
  if target > ct.level then
    err ~op:"mod_switch_to_level" (Herr.Level_mismatch { expected = ct.level; got = target });
  if target < 1 then
    err ~op:"mod_switch_to_level"
      (Herr.Invalid_op { reason = Printf.sprintf "target level must be >= 1, got %d" target });
  if target = ct.level then ct
  else begin
    let c0 = ref (Rq.from_ntt ctx.rq ct.c0) and c1 = ref (Rq.from_ntt ctx.rq ct.c1) in
    for _ = target + 1 to ct.level do
      c0 := Rq.drop_last ctx.rq !c0 ~rounded:false;
      c1 := Rq.drop_last ctx.rq !c1 ~rounded:false
    done;
    { ct with c0 = Rq.to_ntt ctx.rq !c0; c1 = Rq.to_ntt ctx.rq !c1; level = target }
  end

(* --- rotation --- *)

let apply_galois ?(amount = 0) ctx keys ct g =
  let key =
    match Hashtbl.find_opt keys.rotation g with
    | Some k -> k
    | None -> err ~op:"rotate" (Herr.Missing_rotation_key { amount })
  in
  let c0 = Rq.automorphism ctx.rq (Rq.from_ntt ctx.rq ct.c0) ~g in
  let c1 = Rq.automorphism ctx.rq (Rq.from_ntt ctx.rq ct.c1) ~g in
  let k0, k1 = keyswitch ctx ct.level (Rq.to_ntt ctx.rq c1) key in
  { ct with c0 = Rq.add ctx.rq (Rq.to_ntt ctx.rq c0) k0; c1 = k1 }

let rotate ctx keys ct r =
  let slots = slot_count ctx in
  let r = ((r mod slots) + slots) mod slots in
  if r = 0 then ct
  else begin
    let g = galois_of_rotation ctx r in
    if Hashtbl.mem keys.rotation g then apply_galois ~amount:r ctx keys ct g
    else begin
      (* fall back to power-of-two decomposition (the scheme default) *)
      let ct = ref ct and k = ref 1 and rem = ref r in
      while !rem > 0 do
        if !rem land 1 = 1 then begin
          let g = galois_of_rotation ctx !k in
          if not (Hashtbl.mem keys.rotation g) then
            err ~op:"rotate" (Herr.Missing_rotation_key { amount = r });
          ct := apply_galois ~amount:!k ctx keys !ct g
        end;
        rem := !rem lsr 1;
        k := !k lsl 1
      done;
      !ct
    end
  end

let rotate_key_available keys ctx r =
  let g = galois_of_rotation ctx r in
  Hashtbl.mem keys.rotation g

let public_key_parts pk = (pk.pk0, pk.pk1)
let public_key_of_parts (pk0, pk1) = { pk0; pk1 }
let kswitch_pairs k = k.pairs
let kswitch_of_pairs pairs = { pairs }
