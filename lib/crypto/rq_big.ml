module Bigint = Chet_bigint.Bigint

type ctx = {
  n : int;
  primes : int array;
  ntts : Ntt.table array;
  crt_modulus : Bigint.t;
  crt_q_over : Bigint.t array; (* M / p_i *)
  crt_invs : int array; (* (M/p_i)^{-1} mod p_i *)
}

let make_ctx ~n ~max_product_bits =
  let bits_per_prime = 29 in
  (* head-room: reconstruct centered values, so the CRT modulus must exceed
     twice the magnitude bound *)
  let count = ((max_product_bits + 2) / bits_per_prime) + 1 in
  let primes = Modarith.gen_ntt_primes ~bits:30 ~modulus_of:(2 * n) ~count in
  let ntts = Array.map (fun p -> Ntt.make_table ~n ~prime:p) primes in
  let crt_modulus = Array.fold_left (fun acc p -> Bigint.mul_int acc p) Bigint.one primes in
  let crt_q_over = Array.map (fun p -> Bigint.div crt_modulus (Bigint.of_int p)) primes in
  let crt_invs =
    Array.mapi (fun i p -> Modarith.inv_mod (Bigint.mod_int crt_q_over.(i) p) p) primes
  in
  { n; primes; ntts; crt_modulus; crt_q_over; crt_invs }

let ctx_n ctx = ctx.n
let n = ctx_n
let crt_prime_count ctx = Array.length ctx.primes

type mode = int
type t = { poly : Bigint.t array; logq : int }

let mode_of t = t.logq
let modulus _ctx logq = Bigint.pow2 logq

let check ctx t fn =
  if Array.length t.poly <> ctx.n then invalid_arg (fn ^ ": wrong length");
  if t.logq <= 0 then invalid_arg (fn ^ ": bad modulus")

let check2 ctx a b fn =
  check ctx a fn;
  check ctx b fn;
  if a.logq <> b.logq then invalid_arg (fn ^ ": modulus mismatch")

let zero ctx logq =
  if logq <= 0 then invalid_arg "Rq_big.zero: bad modulus";
  { poly = Array.make ctx.n Bigint.zero; logq }

let copy t = { t with poly = Array.copy t.poly }

let of_centered_coeffs ctx logq ints =
  if Array.length ints <> ctx.n then invalid_arg "Rq_big.of_centered_coeffs: wrong length";
  let q = Bigint.pow2 logq in
  { poly = Array.map (fun c -> Bigint.emod (Bigint.of_int c) q) ints; logq }

let of_bigint_coeffs ctx logq coeffs =
  if Array.length coeffs <> ctx.n then invalid_arg "Rq_big.of_bigint_coeffs: wrong length";
  let q = Bigint.pow2 logq in
  { poly = Array.map (fun c -> Bigint.emod c q) coeffs; logq }

let of_reduced_coeffs ~logq coeffs =
  if logq <= 0 then invalid_arg "Rq_big.of_reduced_coeffs: bad modulus";
  let q = Bigint.pow2 logq in
  Array.iter
    (fun c ->
      if Bigint.sign c < 0 || Bigint.compare c q >= 0 then
        invalid_arg "Rq_big.of_reduced_coeffs: coefficient out of range")
    coeffs;
  { poly = Array.copy coeffs; logq }

let coeffs t = Array.copy t.poly

let to_bigint_coeffs ctx t =
  check ctx t "Rq_big.to_bigint_coeffs";
  Array.copy t.poly

let to_centered_bigint_coeffs ctx t =
  check ctx t "Rq_big.to_centered_bigint_coeffs";
  let q = Bigint.pow2 t.logq in
  Array.map (fun c -> Bigint.centered_mod c q) t.poly

(* The big ring has no separate evaluation form: products run through a
   transient CRT basis inside {!mul}. *)
let to_eval _ctx t = t
let from_eval _ctx t = t

let add ctx a b =
  check2 ctx a b "Rq_big.add";
  let q = Bigint.pow2 a.logq in
  { a with
    poly =
      Array.init ctx.n (fun i ->
          let s = Bigint.add a.poly.(i) b.poly.(i) in
          if Bigint.compare s q >= 0 then Bigint.sub s q else s);
  }

let sub ctx a b =
  check2 ctx a b "Rq_big.sub";
  let q = Bigint.pow2 a.logq in
  { a with
    poly =
      Array.init ctx.n (fun i ->
          let d = Bigint.sub a.poly.(i) b.poly.(i) in
          if Bigint.sign d < 0 then Bigint.add d q else d);
  }

let neg ctx a =
  check ctx a "Rq_big.neg";
  let q = Bigint.pow2 a.logq in
  { a with poly = Array.map (fun c -> if Bigint.is_zero c then c else Bigint.sub q c) a.poly }

let mul ctx a b =
  check2 ctx a b "Rq_big.mul";
  let logq = a.logq in
  let q = Bigint.pow2 logq in
  let ca = Array.map (fun c -> Bigint.centered_mod c q) a.poly in
  let cb = Array.map (fun c -> Bigint.centered_mod c q) b.poly in
  let nprimes = Array.length ctx.primes in
  (* residues per prime, negacyclic NTT product over unboxed buffers;
     independent primes fan out across the kernel-domain pool *)
  let prods = Array.init nprimes (fun _ -> Rvec.create ctx.n) in
  let fast = Rq.fast_ring_enabled () in
  Kpool.run nprimes (fun k ->
      let p = ctx.primes.(k) in
      let tbl = ctx.ntts.(k) in
      let ra = prods.(k) in
      let rb = Rvec.create ctx.n in
      for j = 0 to ctx.n - 1 do
        Rvec.set ra j (Bigint.mod_int ca.(j) p);
        Rvec.set rb j (Bigint.mod_int cb.(j) p)
      done;
      Ntt.forward_buf tbl ra;
      Ntt.forward_buf tbl rb;
      if fast then Rvec.pointwise_mul_into ra ra rb p
      else Rvec.pointwise_mul_ref_into ra ra rb p;
      Ntt.inverse_buf tbl ra);
  let poly =
    Array.init ctx.n (fun j ->
        let acc = ref Bigint.zero in
        for k = 0 to nprimes - 1 do
          let c = Modarith.mul_mod (Rvec.get prods.(k) j) ctx.crt_invs.(k) ctx.primes.(k) in
          acc := Bigint.add !acc (Bigint.mul_int ctx.crt_q_over.(k) c)
        done;
        (* centered reconstruction gives the exact signed integer product *)
        Bigint.emod (Bigint.centered_mod !acc ctx.crt_modulus) q)
  in
  { poly; logq }

let mul_bigint ctx a s =
  check ctx a "Rq_big.mul_bigint";
  let q = Bigint.pow2 a.logq in
  { a with poly = Array.map (fun c -> Bigint.emod (Bigint.mul c s) q) a.poly }

let mul_scalar ctx a s = mul_bigint ctx a (Bigint.of_int s)

let automorphism ctx a ~g =
  check ctx a "Rq_big.automorphism";
  let q = Bigint.pow2 a.logq in
  let index = Encoding.automorphism_index ~n:ctx.n ~g in
  let dst = Array.make ctx.n Bigint.zero in
  Array.iteri
    (fun j c ->
      let j', negate = index.(j) in
      dst.(j') <- (if negate && not (Bigint.is_zero c) then Bigint.sub q c else c))
    a.poly;
  { a with poly = dst }

let div_round_pow2 ctx a ~k =
  check ctx a "Rq_big.div_round_pow2";
  if k >= a.logq then invalid_arg "Rq_big.div_round_pow2: would drop entire modulus";
  let q = Bigint.pow2 a.logq in
  let q' = Bigint.pow2 (a.logq - k) in
  let d = Bigint.pow2 k in
  { poly = Array.map (fun c -> Bigint.emod (Bigint.div_round (Bigint.centered_mod c q) d) q') a.poly;
    logq = a.logq - k;
  }

let rescale ctx a ~divisor =
  if divisor <= 0 || divisor land (divisor - 1) <> 0 then
    invalid_arg "Rq_big.rescale: divisor must be a positive power of two";
  let k =
    let rec bits k d = if d = 1 then k else bits (k + 1) (d lsr 1) in
    bits 0 divisor
  in
  div_round_pow2 ctx a ~k

let mod_down ctx a logq_to =
  check ctx a "Rq_big.mod_down";
  if logq_to <= 0 || logq_to > a.logq then invalid_arg "Rq_big.mod_down: bad target modulus";
  let q' = Bigint.pow2 logq_to in
  { poly = Array.map (fun c -> Bigint.emod c q') a.poly; logq = logq_to }

let equal a b =
  a.logq = b.logq
  && Array.length a.poly = Array.length b.poly
  && Array.for_all2 Bigint.equal a.poly b.poly

let to_bytes ctx t =
  check ctx t "Rq_big.to_bytes";
  let b = Buffer.create (16 + (ctx.n * 8)) in
  Buffer.add_int32_le b (Int32.of_int ctx.n);
  Buffer.add_int32_le b (Int32.of_int t.logq);
  Array.iter
    (fun c ->
      let s = Bigint.to_string c in
      Buffer.add_int32_le b (Int32.of_int (String.length s));
      Buffer.add_string b s)
    t.poly;
  Buffer.contents b

let of_bytes ctx s =
  let pos = ref 0 in
  let need k =
    if !pos + k > String.length s then invalid_arg "Rq_big.of_bytes: truncated"
  in
  let read_i32 () =
    need 4;
    let v = Int32.to_int (String.get_int32_le s !pos) in
    pos := !pos + 4;
    v
  in
  let nn = read_i32 () in
  if nn <> ctx.n then invalid_arg "Rq_big.of_bytes: ring-degree mismatch";
  let logq = read_i32 () in
  if logq <= 0 then invalid_arg "Rq_big.of_bytes: bad modulus";
  let q = Bigint.pow2 logq in
  let poly =
    Array.init ctx.n (fun _ ->
        let len = read_i32 () in
        if len < 0 then invalid_arg "Rq_big.of_bytes: bad length";
        need len;
        let str = String.sub s !pos len in
        pos := !pos + len;
        let c = try Bigint.of_string str with _ -> invalid_arg "Rq_big.of_bytes: bad coefficient" in
        if Bigint.sign c < 0 || Bigint.compare c q >= 0 then
          invalid_arg "Rq_big.of_bytes: coefficient out of range";
        c)
  in
  if !pos <> String.length s then invalid_arg "Rq_big.of_bytes: trailing bytes";
  { poly; logq }
