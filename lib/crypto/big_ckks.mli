(** CKKS with a power-of-two coefficient modulus and big-integer arithmetic —
    the original scheme of Cheon–Kim–Kim–Song (ASIACRYPT 2017) as implemented
    by HEAAN v1.0, which the paper's "CHET-HEAAN" configuration targets.

    Differences from {!Rns_ckks} that matter to CHET:
    - the modulus is [Q = 2^logq]; {!rescale} divides by any power of two
      ([maxRescale] returns [2^⌊log2 ub⌋]), so scale management is exact;
    - key switching uses a single special modulus [P = 2^log_special] rather
      than RNS digits;
    - ciphertexts carry their own [logq], which shrinks as the computation
      proceeds. *)

module Bigint = Chet_bigint.Bigint

type params = {
  n : int;
  log_fresh : int;  (** [log2 Q] of fresh ciphertexts *)
  log_special : int;  (** [log2 P] for key switching; HEAAN uses [≈ log_fresh] *)
  sigma : float;
}

val default_params : ?n:int -> ?log_special:int -> log_fresh:int -> unit -> params

type context

val make_context : params -> context
val params : context -> params
val slot_count : context -> int
val encoding : context -> Encoding.ctx
val total_modulus_bits : context -> int

type secret_key
type public_key
type kswitch_key

type keys = {
  public : public_key;
  relin : kswitch_key;
  rotation : (int, kswitch_key) Hashtbl.t;
}

val keygen : context -> Sampling.t -> secret_key * keys
val add_rotation_key : context -> Sampling.t -> secret_key -> keys -> int -> unit
val add_power_of_two_rotation_keys : context -> Sampling.t -> secret_key -> keys -> unit
val rotation_key_count : keys -> int

type plaintext = { poly : Rq_big.t; pt_scale : float }
type ciphertext = { c0 : Rq_big.t; c1 : Rq_big.t; scale : float }

val encode : context -> logq:int -> scale:float -> Complexv.t -> plaintext
val encode_real : context -> logq:int -> scale:float -> float array -> plaintext
val decode : context -> plaintext -> Complexv.t
val encrypt : context -> Sampling.t -> public_key -> plaintext -> ciphertext
val decrypt : context -> secret_key -> ciphertext -> plaintext
val add : context -> ciphertext -> ciphertext -> ciphertext
val sub : context -> ciphertext -> ciphertext -> ciphertext
val negate : context -> ciphertext -> ciphertext
val add_plain : context -> ciphertext -> plaintext -> ciphertext
val sub_plain : context -> ciphertext -> plaintext -> ciphertext
val mul : context -> keys -> ciphertext -> ciphertext -> ciphertext
val mul_plain : context -> ciphertext -> plaintext -> ciphertext
val mul_scalar : context -> ciphertext -> float -> scale:float -> ciphertext
val add_scalar : context -> ciphertext -> float -> ciphertext

val max_rescale : context -> ciphertext -> int -> int
(** Largest power of two [<= ub] (and [< 2^logq]). *)

val rescale : context -> ciphertext -> int -> ciphertext
val mod_down : context -> ciphertext -> logq:int -> ciphertext
val rotate : context -> keys -> ciphertext -> int -> ciphertext
val rotate_key_available : keys -> context -> int -> bool
val logq_of : ciphertext -> int
val scale_of : ciphertext -> float
val pt_logq : plaintext -> int
