(* Unboxed residue-vector kernels over Bigarray buffers (DESIGN.md §15).

   Storage is the [Bigarray.int] kind — native 63-bit ints in 64-bit memory
   words. Unlike the [int64] kind, reads and writes do not box, so the hot
   loops below compile to straight-line word loads/stores plus integer ALU
   ops. All residues are < 2^30 (the prime ladder is generated with
   [bits = 30]), so a product of two residues fits comfortably in 62 bits.

   Reduction strategy (see DESIGN.md §15 for the error analysis):
   - products with one fixed multiplicand (twiddles, scalar broadcast,
     rescale inverses) use Shoup's trick with a precomputed
     [(w << 31) / p] companion word — two multiplies, a shift and a
     branchless correction, no division;
   - products of two variable operands keep the hardware [mod]: a
     float-assisted Barrett variant was measured slower here (the
     int<->float conversion chain outweighs one 63-bit divide), and no
     integer Barrett fits two 30-bit operands in a 63-bit word;
   - additive ops fold with the branchless conditional-subtract
     [d + (p land (d asr 62))], which adds [p] back exactly when [d] is
     negative.

   Every kernel stores canonical residues in [0, p), so the fast path is
   bit-identical to the schoolbook [mod]-based reference kernels (the
   [_ref] twins below): the reduction strategy changes, the result never
   does. [Rq_rns] picks fast vs reference per call from the
   {!Rq.fast_ring_enabled} toggle. *)

type buf = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

(* Syntactic full applications at a concrete type: each compiles to an
   inlined word load/store. An eta-reduced alias
   ([let uget = Bigarray.Array1.unsafe_get]) would instead close over the
   polymorphic primitive and dispatch through the generic C stub on every
   element access — ~10x slower in the butterfly loops. *)
let[@inline] uget (b : buf) i : int = Bigarray.Array1.unsafe_get b i
let[@inline] uset (b : buf) i (v : int) = Bigarray.Array1.unsafe_set b i v
let create n : buf = Bigarray.Array1.create Bigarray.int Bigarray.c_layout n
let length (b : buf) = Bigarray.Array1.dim b
let get (b : buf) i = Bigarray.Array1.get b i
let set (b : buf) i v = Bigarray.Array1.set b i v
let fill (b : buf) v = Bigarray.Array1.fill b v
let blit (src : buf) (dst : buf) = Bigarray.Array1.blit src dst

let copy (b : buf) =
  let c = create (length b) in
  blit b c;
  c

let zeroed n =
  let b = create n in
  fill b 0;
  b

let of_int_array (a : int array) =
  let n = Array.length a in
  let b = create n in
  for i = 0 to n - 1 do
    uset b i (Array.unsafe_get a i)
  done;
  b

let to_int_array (b : buf) = Array.init (length b) (fun i -> uget b i)

let blit_from_array (a : int array) (b : buf) =
  let n = Array.length a in
  if length b <> n then invalid_arg "Rvec.blit_from_array: length mismatch";
  for i = 0 to n - 1 do
    uset b i (Array.unsafe_get a i)
  done

let blit_to_array (b : buf) (a : int array) =
  let n = Array.length a in
  if length b <> n then invalid_arg "Rvec.blit_to_array: length mismatch";
  for i = 0 to n - 1 do
    Array.unsafe_set a i (uget b i)
  done

let equal (a : buf) (b : buf) =
  length a = length b
  &&
  let n = length a in
  let rec go i = i >= n || (uget a i = uget b i && go (i + 1)) in
  go 0

(* --- additive kernels (identical under both reduction strategies) --- *)

let add_into (dst : buf) (a : buf) (b : buf) p =
  for i = 0 to length dst - 1 do
    let d = uget a i + uget b i - p in
    uset dst i (d + (p land (d asr 62)))
  done

let sub_into (dst : buf) (a : buf) (b : buf) p =
  for i = 0 to length dst - 1 do
    let d = uget a i - uget b i in
    uset dst i (d + (p land (d asr 62)))
  done

let neg_into (dst : buf) (a : buf) p =
  for i = 0 to length dst - 1 do
    let x = uget a i in
    (* (p - x) masked to 0 when x = 0 *)
    uset dst i ((p - x) land (-x asr 62))
  done

(* --- multiplicative kernels, fast (Shoup; hardware [mod] where both
   operands vary — measured faster than float-Barrett on this target) --- *)

let pointwise_mul_into (dst : buf) (a : buf) (b : buf) p =
  for i = 0 to length dst - 1 do
    uset dst i (uget a i * uget b i mod p)
  done

let pointwise_mac_into (acc : buf) (a : buf) (b : buf) p =
  for i = 0 to length acc - 1 do
    let r = uget a i * uget b i mod p in
    let s = uget acc i + r - p in
    uset acc i (s + (p land (s asr 62)))
  done

let scalar_mul_into (dst : buf) (a : buf) s p =
  let s = Modarith.reduce s p in
  let ssh = Modarith.shoup s p in
  for i = 0 to length dst - 1 do
    let x = uget a i in
    let q = (ssh * x) lsr 31 in
    let d = (s * x) - (q * p) - p in
    uset dst i (d + (p land (d asr 62)))
  done

let broadcast_mod_into (dst : buf) (src : buf) p =
  (* [src] holds canonical residues of some other (word-sized) modulus,
     each < 2^31; reduce into [0, p) with a Shoup step at w = 1:
     q = (x * ((1 << 31) / p)) >> 31 leaves x - q*p in [0, 2p), and one
     conditional subtract lands it canonically. Integer-only, no divide
     in the loop. *)
  let sh = Modarith.shoup 1 p in
  for i = 0 to length dst - 1 do
    let x = uget src i in
    let q = (sh * x) lsr 31 in
    let d = x - (q * p) - p in
    uset dst i (d + (p land (d asr 62)))
  done

(* --- multiplicative kernels, reference (schoolbook [mod]) --- *)

let pointwise_mul_ref_into (dst : buf) (a : buf) (b : buf) p =
  for i = 0 to length dst - 1 do
    uset dst i (uget a i * uget b i mod p)
  done

let pointwise_mac_ref_into (acc : buf) (a : buf) (b : buf) p =
  for i = 0 to length acc - 1 do
    let r = uget a i * uget b i mod p in
    let s = uget acc i + r in
    uset acc i (if s >= p then s - p else s)
  done

let scalar_mul_ref_into (dst : buf) (a : buf) s p =
  let s = Modarith.reduce s p in
  for i = 0 to length dst - 1 do
    uset dst i (uget a i * s mod p)
  done

let broadcast_mod_ref_into (dst : buf) (src : buf) p =
  for i = 0 to length dst - 1 do
    uset dst i (uget src i mod p)
  done

(* --- boundary kernels (always exact [mod]; not on the per-op hot path) --- *)

let reduce_centered_into (dst : buf) (coeffs : int array) p =
  let n = Array.length coeffs in
  for i = 0 to n - 1 do
    uset dst i (Modarith.reduce (Array.unsafe_get coeffs i) p)
  done

let rescale_limb_into (dst : buf) (src : buf) (last : buf) ~q_last ~p =
  (* CKKS rescale, one limb: dst = (src - [last]_centered) / q_last  (mod p).
     The centered lift of the dropped residue makes the division a proper
     rounding (rq_rns.drop_last ~rounded:true). *)
  let half = q_last / 2 in
  let inv = Modarith.inv_mod (q_last mod p) p in
  let inv_sh = Modarith.shoup inv p in
  for i = 0 to length dst - 1 do
    let d = uget last i in
    let d = if d > half then d - q_last else d in
    (* centered d satisfies |d| < 2^30; reduce exactly, then subtract *)
    let dp = d mod p in
    let dp = if dp < 0 then dp + p else dp in
    (* t in (0, 2p) — still below the Shoup operand bound of 2^31 *)
    let t = uget src i - dp + p in
    let q = (inv_sh * t) lsr 31 in
    let r = (inv * t) - (q * p) - p in
    uset dst i (r + (p land (r asr 62)))
  done

let rescale_limb_ref_into (dst : buf) (src : buf) (last : buf) ~q_last ~p =
  let half = q_last / 2 in
  let inv = Modarith.inv_mod (q_last mod p) p in
  for i = 0 to length dst - 1 do
    let d = uget last i in
    let d = if d > half then d - q_last else d in
    let c = Modarith.sub_mod (uget src i) (Modarith.reduce d p) p in
    uset dst i (Modarith.mul_mod c inv p)
  done

let automorphism_into (dst : buf) (src : buf) (index : (int * bool) array) p =
  let n = Array.length index in
  for j = 0 to n - 1 do
    let j', negate = Array.unsafe_get index j in
    let v = uget src j in
    uset dst j' (if negate then (p - v) land (-v asr 62) else v)
  done
