module Bigint = Chet_bigint.Bigint

(* Mutable so a long-lived sampler (e.g. a prepared plan executor shared
   across requests) can be [reseed]ed to exactly the stream a fresh
   [create] would produce — bit-identical randomness without rebuilding
   the backend that holds it. *)
type t = { mutable st : Random.State.t }

let fresh_state ~seed = Random.State.make [| seed; 0x43484554 (* "CHET" *) |]
let create ~seed = { st = fresh_state ~seed }
let reseed t ~seed = t.st <- fresh_state ~seed
let state t = t.st
let uniform_mod t m = Random.State.int t.st m

let ternary t n = Array.init n (fun _ -> Random.State.int t.st 3 - 1)

let gaussian t ~sigma n =
  let sample () =
    let u1 = Random.State.float t.st 1.0 +. 1e-12 in
    let u2 = Random.State.float t.st 1.0 in
    let g = sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2) *. sigma in
    let bound = 6.0 *. sigma in
    let g = Float.max (-.bound) (Float.min bound g) in
    int_of_float (Float.round g)
  in
  Array.init n (fun _ -> sample ())

let uniform_poly t ~modulus n = Array.init n (fun _ -> Random.State.int t.st modulus)

let uniform_bigint_poly t ~modulus n =
  let rand31 () = Random.State.bits t.st in
  Array.init n (fun _ -> Bigint.random_below rand31 modulus)
