(* Compile-time checks that both ring implementations satisfy the unified
   {!Rq.S} signature. No runtime content — a failure here is a build error
   pointing at the drifted module. *)

module _ =
  (Rq_rns : Rq.S with type ctx = Rq_rns.ctx and type mode = int array and type t = Rq_rns.t)

module _ = (Rq_big : Rq.S with type ctx = Rq_big.ctx and type mode = int and type t = Rq_big.t)
