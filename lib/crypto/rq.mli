(** The unified polynomial-ring signature and the global fast-ring toggle.

    {!Rq_rns} (double-CRT over word-sized primes) and {!Rq_big} (single
    power-of-two big-integer modulus) both implement {!module-type-S}; the
    scheme layers program against that shape so the underlying storage
    (unboxed Bigarray buffers) never leaks past lib/crypto. See
    {!Rq_conform} for the conformance checks and DESIGN.md §15 for the
    storage and reduction strategy. *)

module Bigint = Chet_bigint.Bigint

module type S = sig
  type ctx
  type mode
  type t

  val n : ctx -> int
  val mode_of : t -> mode
  val zero : ctx -> mode -> t
  val copy : t -> t
  val of_centered_coeffs : ctx -> mode -> int array -> t
  val of_bigint_coeffs : ctx -> mode -> Bigint.t array -> t
  val to_bigint_coeffs : ctx -> t -> Bigint.t array
  val to_centered_bigint_coeffs : ctx -> t -> Bigint.t array
  val modulus : ctx -> mode -> Bigint.t
  val to_eval : ctx -> t -> t
  val from_eval : ctx -> t -> t
  val add : ctx -> t -> t -> t
  val sub : ctx -> t -> t -> t
  val neg : ctx -> t -> t
  val mul : ctx -> t -> t -> t
  val mul_scalar : ctx -> t -> int -> t
  val automorphism : ctx -> t -> g:int -> t
  val rescale : ctx -> t -> divisor:int -> t
  val mod_down : ctx -> t -> mode -> t
  val equal : t -> t -> bool
  val to_bytes : ctx -> t -> string
  val of_bytes : ctx -> string -> t
end

val set_fast_ring : bool -> unit
(** Select the Bigarray fast kernels ([true], the default) or the scalar
    schoolbook reference path ([false], the [--no-fast-ring] oracle). Both
    produce bit-identical results; flip only at process start-up. *)

val fast_ring_enabled : unit -> bool
