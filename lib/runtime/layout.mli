(** Physical layouts of encrypted tensors (§4.2): how a logical
    [\[c; h; w\]] tensor maps onto a vector of ciphertexts, each a flat
    vector of [slots] values.

    - [HW]: one channel per ciphertext, row-major with inter-row gaps
      (margin) so that convolution rotations read zeros across borders.
    - [CHW]: several channels per ciphertext, each in its own block.

    Strides are explicit so that striding operations (pool / strided conv)
    are metadata updates: outputs live at dilated positions and later
    operations simply use larger [col_stride]/[row_stride] (§4.2's "CHET
    avoids or delays these expensive operations").

    Invariant maintained by the kernels: every slot that is not a valid
    logical position holds zero.

    Sentinel twin layouts ([twin = true], DESIGN.md §16) interleave: logical
    position [s] lives at physical slot [2s] and slot [2s+1] carries a
    sentinel copy of the same position (a known probe input packed at
    encrypt time). All strides and offsets are doubled, so every rotation
    amount a kernel derives from the meta is even — and even rotations
    preserve slot parity even across wrap-around, which isolates the
    primary (even) and sentinel (odd) computations unconditionally. *)

type kind = HW | CHW

type meta = {
  kind : kind;
  channels : int;
  height : int;
  width : int;
  offset : int;  (** physical slot of logical [(c mod ch_per_ct = 0, 0, 0)] *)
  col_stride : int;
  row_stride : int;
  ch_stride : int;  (** slots between channel blocks within a ciphertext *)
  ch_per_ct : int;  (** always a power of two (or 1) *)
  slots : int;
  twin : bool;  (** odd slots carry the interleaved sentinel copy *)
}

val create :
  kind:kind -> slots:int -> channels:int -> height:int -> width:int -> ?margin:int ->
  ?twin:bool -> unit -> meta
(** [margin] (default 2) is the border head-room in logical pixels on every
    side — it must be at least [⌊k/2⌋] for the largest Same-padding
    convolution applied to this tensor. [twin] (default false) interleaves
    sentinel slots (doubling the physical footprint).
    @raise Chet_herr.Herr.Fhe_error
      ([Slot_overflow]) if the tensor does not fit in [slots]. *)

val vector_meta : slots:int -> length:int -> ?twin:bool -> unit -> meta
(** Dense vector layout (used for fully-connected outputs): [length]
    channels of 1×1, packed contiguously. *)

val num_cts : meta -> int
val ct_index : meta -> int -> int
(** Ciphertext holding a given logical channel. *)

val slot_of : meta -> c:int -> h:int -> w:int -> int
(** Physical slot (within its ciphertext) of a logical position. *)

val flat_index : meta -> c:int -> h:int -> w:int -> int
(** Row-major logical index, as [Flatten] would produce. *)

val iter_positions : meta -> (int -> int -> int -> unit) -> unit
(** Visit every logical [(c, h, w)] position. *)

val pack : ?probe:Chet_tensor.Tensor.t -> meta -> Chet_tensor.Tensor.t -> float array array
(** Lay a cleartext tensor out physically — the Encryptor side. [probe]
    (twin layouts only) is the sentinel tensor packed into the odd slots.
    @raise Chet_herr.Herr.Fhe_error
      ([Invalid_op]) if a probe is supplied without twin slots. *)

val unpack : meta -> float array array -> Chet_tensor.Tensor.t
(** Inverse of {!pack} — the Decryptor side. *)

val unpack_twin : meta -> float array array -> Chet_tensor.Tensor.t
(** The sentinel tensor the odd (twin) slots carry — what the integrity
    check compares against the clear reference prediction.
    @raise Chet_herr.Herr.Fhe_error ([Invalid_op]) without twin slots. *)

val plains : meta -> (int -> int -> int -> float) -> float array array
(** [plains meta f]: per-ciphertext plaintext vectors with [f c h w] at each
    valid position and zero elsewhere (masks, per-channel weights, biases). *)

val plain_ct : meta -> int -> (int -> int -> int -> float) -> float array
(** [plain_ct meta j f]: the single vector [plains meta f].(j) without
    building the others (the kernels' hot path at large ring dimensions). *)

val valid_mask : meta -> float array array
(** {!plains} with the constant 1. *)

val with_spatial : meta -> height:int -> width:int -> meta
(** Same physical geometry, smaller logical extent (Valid convolutions). *)

val after_stride : meta -> int -> meta
(** Dilate by a stride factor: positions [(s·i, s·j)] become the new logical
    grid (pooling and strided convolutions). *)

val with_channels : meta -> int -> meta
(** Same geometry, different channel count (convolution outputs). *)

val converted : meta -> to_kind:kind -> meta
(** The meta a {!Kernels.Make.convert} to [to_kind] produces, without
    touching ciphertexts — the plan compiler's static view of layout
    conversion. Identity when the kind already matches. *)

val max_extent : meta -> int
(** Largest physical slot index any valid logical position occupies. *)

val max_rotation_safe : meta -> int -> bool
(** Whether reading a tap at physical distance [d] can neither fall off the
    vector nor wrap into occupied slots. *)

val pp : Format.formatter -> meta -> unit
