(* Homomorphic tensor kernels, written once against the HISA and instantiated
   per backend (real schemes, cleartext reference, simulator, and the
   compiler's data-flow analyses — §5.1's "execute the circuit under a
   different interpretation").

   Conventions shared by all kernels:
   - the layout invariant: slots outside valid logical positions are zero;
     ops that scramble the gap slots (conv, pool, matmul) end with a
     plaintext mask that restores it (the "Mask" of Figures 1 and 4);
   - rotations are normalised to left-rotations in [0, slots);
   - after any scale-raising op the tensor is rescaled back towards the
     working scale as far as maxRescale allows (§5.5's interplay between
     scales and rescaling). *)

module Hisa = Chet_hisa.Hisa
module Herr = Chet_hisa.Herr
module Tensor = Chet_tensor.Tensor

let err ~op e = Herr.raise_err ~backend:"kernels" ~op e

let shape_str a = "[" ^ String.concat "; " (Array.to_list (Array.map string_of_int a)) ^ "]"
let meta_str m = Format.asprintf "%a" Layout.pp m

type scales = {
  pc : int;  (** ciphertext (image) working scale *)
  pw : int;  (** plaintext-vector weight scale *)
  pu : int;  (** scalar weight scale *)
  pm : int;  (** mask scale *)
}

(* pm must dominate the CKKS encoding noise of a 0/1 mask (~sqrt(N)/2 in the
   slot domain); pu*pm = pw*pm = pc so one chain prime rescales a layer. *)
let default_scales = { pc = 1 lsl 30; pw = 1 lsl 16; pu = 1 lsl 16; pm = 1 lsl 14 }

(* --- backend-free geometry (shared with the plan compiler) ----------- *)

let conv_geometry meta ~kh ~kw ~stride ~padding =
  let ph = match padding with Tensor.Same -> kh / 2 | Tensor.Valid -> 0 in
  let pw_ = match padding with Tensor.Same -> kw / 2 | Tensor.Valid -> 0 in
  let oh = Tensor.conv_output_dim meta.Layout.height kh stride padding in
  let ow = Tensor.conv_output_dim meta.Layout.width kw stride padding in
  let spatial =
    Layout.with_spatial meta ~height:(((oh - 1) * stride) + 1) ~width:(((ow - 1) * stride) + 1)
  in
  let out = Layout.after_stride spatial stride in
  (ph, pw_, out)

(* rotation amount bringing input position (y0+dy, x0+dx) to the slot of
   output position (y0, x0) *)
let tap_rotation meta ~dy ~dx = (dy * meta.Layout.row_stride) + (dx * meta.Layout.col_stride)

module Make (H : Hisa.S) = struct
  type ct_tensor = { meta : Layout.meta; cts : H.ct array }

  let rot ct amount =
    let s = H.slots in
    let amount = ((amount mod s) + s) mod s in
    if amount = 0 then ct else H.rot_left ct amount

  (* --- scale management ------------------------------------------- *)

  (* Loop: maxRescale's upper bound is a native int, so one call can remove
     at most ~62 bits; deep scale backlogs (squarings) need several rounds. *)
  let rec rescale_toward cfg ct =
    let s = H.scale_of ct in
    let ub = s /. float_of_int cfg.pc in
    if ub < 2.0 then ct
    else begin
      let ub_int = if ub >= 4.0e18 then max_int else int_of_float ub in
      let d = H.max_rescale ct ub_int in
      if d > 1 then rescale_toward cfg (H.rescale ct d) else ct
    end

  let normalize cfg t = { t with cts = Array.map (rescale_toward cfg) t.cts }

  (* --- encryptor / decryptor --------------------------------------- *)

  let encrypt_tensor ?probe cfg meta tensor =
    let vecs = Layout.pack ?probe meta tensor in
    { meta; cts = Array.map (fun v -> H.encrypt (H.encode v ~scale:cfg.pc)) vecs }

  let decrypt_tensor t =
    Layout.unpack t.meta (Array.map (fun ct -> H.decode (H.decrypt ct)) t.cts)

  (* Decrypt once, split into the primary result and (for twin layouts) the
     sentinel tensor carried in the odd slots. *)
  let decrypt_parts t =
    let vecs = Array.map (fun ct -> H.decode (H.decrypt ct)) t.cts in
    let twin = if t.meta.Layout.twin then Some (Layout.unpack_twin t.meta vecs) else None in
    (Layout.unpack t.meta vecs, twin)

  (* --- helpers ------------------------------------------------------ *)

  let encode_plains plains ~scale = Array.map (fun v -> H.encode v ~scale) plains

  let mask_with cfg t plain_vecs =
    let plains = encode_plains plain_vecs ~scale:cfg.pm in
    { t with cts = Array.mapi (fun i ct -> H.mul_plain ct plains.(i)) t.cts }

  let add_opt acc term = match acc with None -> Some term | Some a -> Some (H.add a term)

  (* A kernel reading [d] physical slots beyond the image on either side
     needs that much zero head-room; [d = 0] (Valid padding, pooling) reads
     only inside the image and needs none. *)
  let check_taps ~op meta d =
    if d > 0 && not (Layout.max_rotation_safe meta d) then
      err ~op
        (Herr.Slot_overflow
           { slots = meta.Layout.slots; requested = Layout.max_extent meta + d })
      (* layout margins too small for this kernel's taps: increase ~margin *)

  (* sum a ciphertext's slots so that slot 0's block receives the total of
     the [count] blocks spaced [stride] apart; [count] must be a power of
     two. After the fold, positions offset by anything else hold partial
     garbage (to be masked by the caller). *)
  let fold_blocks ct ~count ~stride =
    let acc = ref ct and step = ref (count / 2) in
    while !step >= 1 do
      acc := H.add !acc (rot !acc (!step * stride));
      step := !step / 2
    done;
    !acc

  (* --- convolution -------------------------------------------------- *)

  let conv_geometry = conv_geometry
  let tap_rotation = tap_rotation

  let conv2d cfg t ~weights ~bias ~stride ~padding =
    let meta = t.meta in
    let cout = weights.Tensor.shape.(0) and cin = weights.Tensor.shape.(1) in
    let kh = weights.Tensor.shape.(2) and kw = weights.Tensor.shape.(3) in
    if cin <> meta.Layout.channels then
      err ~op:"conv2d"
        (Herr.Shape_mismatch
           {
             expected = Printf.sprintf "weights with %d input channels" meta.Layout.channels;
             got = Printf.sprintf "weights %s (%d input channels)" (shape_str weights.Tensor.shape) cin;
           });
    let ph, pw_, out_spatial = conv_geometry meta ~kh ~kw ~stride ~padding in
    let out_meta = Layout.with_channels out_spatial cout in
    check_taps ~op:"conv2d" meta (tap_rotation meta ~dy:ph ~dx:pw_);
    let w_at o c dy dx = Tensor.get weights [| o; c; dy; dx |] in
    (* rotated input ciphertexts, shared across output channels *)
    let rotated = Hashtbl.create 64 in
    let rotated_ct j ~dy ~dx =
      let amount = tap_rotation meta ~dy:(dy - ph) ~dx:(dx - pw_) in
      match Hashtbl.find_opt rotated (j, amount) with
      | Some ct -> ct
      | None ->
          let ct = rot t.cts.(j) amount in
          Hashtbl.replace rotated (j, amount) ct;
          ct
    in
    let out_cts =
      match meta.Layout.kind with
      | Layout.HW ->
          (* one input ciphertext per channel; weights enter as scalars *)
          Array.init cout (fun o ->
              let acc = ref None in
              for c = 0 to cin - 1 do
                for dy = 0 to kh - 1 do
                  for dx = 0 to kw - 1 do
                    let w = w_at o c dy dx in
                    if w <> 0.0 then
                      acc := add_opt !acc (H.mul_scalar (rotated_ct c ~dy ~dx) w ~scale:cfg.pu)
                  done
                done
              done;
              match !acc with
              | Some ct -> ct
              | None -> H.mul_scalar t.cts.(0) 0.0 ~scale:cfg.pu)
      | Layout.CHW ->
          (* channels packed in blocks; weights enter as plaintext vectors
             and partial sums fold across blocks *)
          let cpc = meta.Layout.ch_per_ct in
          let in_cts = Layout.num_cts meta in
          (* plaintext weights live on the *output* spatial grid but with the
             *input* channel structure *)
          let mid_meta = Layout.with_channels out_spatial cin in
          let out_cpc = out_meta.Layout.ch_per_ct in
          let out_ct_count = Layout.num_cts out_meta in
          let outs = Array.make out_ct_count None in
          for o = 0 to cout - 1 do
            let acc = ref None in
            for j = 0 to in_cts - 1 do
              for dy = 0 to kh - 1 do
                for dx = 0 to kw - 1 do
                  let plain_vec = Layout.plain_ct mid_meta j (fun c _ _ -> w_at o c dy dx) in
                  if Array.exists (fun v -> v <> 0.0) plain_vec then begin
                    let p = H.encode plain_vec ~scale:cfg.pw in
                    acc := add_opt !acc (H.mul_plain (rotated_ct j ~dy ~dx) p)
                  end
                done
              done
            done;
            let acc =
              match !acc with
              | Some ct -> ct
              | None -> H.mul_scalar t.cts.(0) 0.0 ~scale:cfg.pw
            in
            (* fold the per-block partials into block 0 *)
            let folded =
              if cpc > 1 then fold_blocks acc ~count:cpc ~stride:meta.Layout.ch_stride else acc
            in
            (* place channel o into its block of its output ciphertext, then
               mask to that block alone: the fold leaves partial sums in the
               other blocks, which must not pollute sibling channels *)
            let placed = rot folded (-(o mod out_cpc) * out_meta.Layout.ch_stride) in
            let mask_o =
              Layout.plain_ct out_meta (o / out_cpc) (fun c _ _ -> if c = o then 1.0 else 0.0)
            in
            let masked = H.mul_plain placed (H.encode mask_o ~scale:cfg.pm) in
            outs.(o / out_cpc) <- add_opt outs.(o / out_cpc) masked
          done;
          Array.map (function Some ct -> ct | None -> assert false) outs
    in
    (* in HW the accumulator is masked once per output ciphertext (Fig. 4);
       in CHW the per-channel placement above already masked everything *)
    let masked =
      match meta.Layout.kind with
      | Layout.HW -> mask_with cfg { meta = out_meta; cts = out_cts } (Layout.valid_mask out_meta)
      | Layout.CHW -> { meta = out_meta; cts = out_cts }
    in
    (* rescale before the bias so its encoding scale fits a native int *)
    let masked = normalize cfg masked in
    match bias with
    | None -> masked
    | Some bs ->
        let scale_now = H.scale_of masked.cts.(0) in
        let bias_plains =
          encode_plains (Layout.plains out_meta (fun c _ _ -> bs.(c)))
            ~scale:(int_of_float scale_now)
        in
        { masked with cts = Array.mapi (fun i ct -> H.add_plain ct bias_plains.(i)) masked.cts }

  (* --- pooling ------------------------------------------------------ *)

  let avg_pool cfg t ~ksize ~stride =
    (* pooling reads strictly inside the image: no head-room needed *)
    let meta = t.meta in
    let summed =
      Array.map
        (fun ct ->
          let acc = ref ct in
          for dy = 0 to ksize - 1 do
            for dx = 0 to ksize - 1 do
              if dy <> 0 || dx <> 0 then
                acc := H.add !acc (rot ct (tap_rotation meta ~dy ~dx))
            done
          done;
          !acc)
        t.cts
    in
    let out_meta =
      Layout.after_stride
        (Layout.with_spatial meta
           ~height:(meta.Layout.height - ksize + 1)
           ~width:(meta.Layout.width - ksize + 1))
        stride
    in
    (* the 1/k² averaging factor rides along in the mask (one multiply) *)
    let inv = 1.0 /. float_of_int (ksize * ksize) in
    let masks = Layout.plains out_meta (fun _ _ _ -> inv) in
    normalize cfg (mask_with cfg { meta = out_meta; cts = summed } masks)

  let global_avg_pool cfg t =
    let meta = t.meta in
    let is_pow2 n = n > 0 && n land (n - 1) = 0 in
    let summed =
      Array.map
        (fun ct ->
          (* sum rows into row 0, then columns into column 0 *)
          let row_sum =
            if is_pow2 meta.Layout.height then
              fold_blocks ct ~count:meta.Layout.height ~stride:meta.Layout.row_stride
            else begin
              let acc = ref ct in
              for i = 1 to meta.Layout.height - 1 do
                acc := H.add !acc (rot ct (i * meta.Layout.row_stride))
              done;
              !acc
            end
          in
          if is_pow2 meta.Layout.width then
            fold_blocks row_sum ~count:meta.Layout.width ~stride:meta.Layout.col_stride
          else begin
            let acc = ref row_sum in
            for j = 1 to meta.Layout.width - 1 do
              acc := H.add !acc (rot row_sum (j * meta.Layout.col_stride))
            done;
            !acc
          end)
        t.cts
    in
    let out_meta = Layout.with_spatial meta ~height:1 ~width:1 in
    let inv = 1.0 /. float_of_int (meta.Layout.height * meta.Layout.width) in
    let masks = Layout.plains out_meta (fun _ _ _ -> inv) in
    normalize cfg (mask_with cfg { meta = out_meta; cts = summed } masks)

  (* --- pointwise ops ------------------------------------------------ *)

  let poly_act cfg t ~a ~b =
    (* a·x² + b·x = (a·x + b) · x : one scalar multiply, one ct multiply.
       Zero slots stay zero: (a·0 + b)·0 = 0, preserving the invariant. *)
    let cts =
      Array.map
        (fun x ->
          let t1 = H.add_scalar (H.mul_scalar x a ~scale:cfg.pu) b in
          rescale_toward cfg (H.mul t1 x))
        t.cts
    in
    { t with cts }

  let square cfg t = normalize cfg { t with cts = Array.map (fun x -> H.mul x x) t.cts }

  let batch_norm cfg t ~scale ~shift =
    let scale_plains = encode_plains (Layout.plains t.meta (fun c _ _ -> scale.(c))) ~scale:cfg.pw in
    let cts = Array.mapi (fun i ct -> H.mul_plain ct scale_plains.(i)) t.cts in
    let scaled = normalize cfg { t with cts } in
    let s_now = H.scale_of scaled.cts.(0) in
    let shift_plains =
      encode_plains (Layout.plains t.meta (fun c _ _ -> shift.(c))) ~scale:(int_of_float s_now)
    in
    { scaled with cts = Array.mapi (fun i ct -> H.add_plain ct shift_plains.(i)) scaled.cts }

  (* --- fully connected ---------------------------------------------- *)

  let matmul cfg t ~weights ~bias =
    let meta = t.meta in
    let out_dim = weights.Tensor.shape.(0) in
    let in_dim = weights.Tensor.shape.(1) in
    if in_dim <> meta.Layout.channels * meta.Layout.height * meta.Layout.width then
      err ~op:"matmul"
        (Herr.Shape_mismatch
           {
             expected =
               Printf.sprintf "weights with input dimension %d (= %dx%dx%d)"
                 (meta.Layout.channels * meta.Layout.height * meta.Layout.width)
                 meta.Layout.channels meta.Layout.height meta.Layout.width;
             got = Printf.sprintf "weights %s" (shape_str weights.Tensor.shape);
           });
    let out_meta = Layout.vector_meta ~slots:H.slots ~length:out_dim ~twin:meta.Layout.twin () in
    let out = ref None in
    for o = 0 to out_dim - 1 do
      let partial = ref None in
      (* build the weight plaintext one ciphertext at a time: at large ring
         dimensions the full per-output plains vector set is huge *)
      Array.iteri
        (fun j ct ->
          let wp_j =
            Layout.plain_ct meta j (fun c h w_ ->
                Tensor.get weights [| o; Layout.flat_index meta ~c ~h ~w:w_ |])
          in
          partial := add_opt !partial (H.mul_plain ct (H.encode wp_j ~scale:cfg.pw)))
        t.cts;
      let partial = match !partial with Some p -> p | None -> assert false in
      (* all-reduce: every slot ends up holding the dot product. Twin
         layouts fold at stride 2 over half the slots — each parity class
         all-reduces within itself, keeping the sentinel dot product in the
         odd slots and the primary one in the even slots. *)
      let total =
        if meta.Layout.twin then fold_blocks partial ~count:(H.slots / 2) ~stride:2
        else fold_blocks partial ~count:H.slots ~stride:1
      in
      (* select slot o *)
      let mask = Array.make H.slots 0.0 in
      mask.(Layout.slot_of out_meta ~c:o ~h:0 ~w:0) <- 1.0;
      if meta.Layout.twin then mask.(Layout.slot_of out_meta ~c:o ~h:0 ~w:0 + 1) <- 1.0;
      out := add_opt !out (H.mul_plain total (H.encode mask ~scale:cfg.pm))
    done;
    let out_ct = match !out with Some ct -> ct | None -> assert false in
    let out_ct = rescale_toward cfg out_ct in
    match bias with
    | None -> { meta = out_meta; cts = [| out_ct |] }
    | Some bs ->
        let s_now = H.scale_of out_ct in
        let bias_plain =
          (encode_plains (Layout.plains out_meta (fun c _ _ -> bs.(c))) ~scale:(int_of_float s_now)).(0)
        in
        { meta = out_meta; cts = [| H.add_plain out_ct bias_plain |] }

  (* --- structural ops ------------------------------------------------ *)

  let flatten t = t
  (* metadata-only: matmul consumes the layout's own flat indexing *)

  let residual t1 t2 =
    if t1.meta <> t2.meta then
      err ~op:"residual" (Herr.Shape_mismatch { expected = meta_str t1.meta; got = meta_str t2.meta });
    { t1 with cts = Array.map2 H.add t1.cts t2.cts }

  (* concatenate along channels. Fast path: every input's channel count is a
     multiple of the output block capacity *and* all inputs share a scale, so
     ciphertext arrays simply append. Slow path: mask each channel (with a
     per-input mask factor that equalises the product scales) and rotate it
     into place. *)
  let concat cfg ts =
    match List.map (normalize cfg) ts with
    | [] -> err ~op:"concat" (Herr.Invalid_op { reason = "empty input list" })
    | first :: _ as ts ->
        let total_c = List.fold_left (fun acc t -> acc + t.meta.Layout.channels) 0 ts in
        let out_meta = Layout.with_channels first.meta total_c in
        let cpc = out_meta.Layout.ch_per_ct in
        let scales = List.map (fun t -> H.scale_of t.cts.(0)) ts in
        let s_max = List.fold_left Float.max 0.0 scales in
        let same_scale =
          List.for_all (fun s -> Float.abs (s -. s_max) <= 1e-6 *. s_max) scales
        in
        let aligned =
          same_scale
          && List.for_all
               (fun t -> t.meta.Layout.ch_per_ct = cpc && t.meta.Layout.channels mod cpc = 0)
               ts
        in
        if aligned then { meta = out_meta; cts = Array.concat (List.map (fun t -> t.cts) ts) }
        else begin
          let out_ct_count = Layout.num_cts out_meta in
          let outs = Array.make out_ct_count None in
          let next = ref 0 in
          List.iter
            (fun t ->
              (* mask factor chosen so every input lands at scale ~s_max*pm *)
              let target = s_max *. float_of_int cfg.pm in
              let mask_scale =
                Stdlib.max 1 (int_of_float (Float.round (target /. H.scale_of t.cts.(0))))
              in
              for c = 0 to t.meta.Layout.channels - 1 do
                let oc = !next + c in
                (* isolate channel c, move it from its block to oc's block *)
                let src = Layout.ct_index t.meta c in
                let mask_c = Layout.plain_ct t.meta src (fun c' _ _ -> if c' = c then 1.0 else 0.0) in
                let isolated = H.mul_plain t.cts.(src) (H.encode mask_c ~scale:mask_scale) in
                let delta =
                  ((oc mod cpc) - (c mod t.meta.Layout.ch_per_ct)) * out_meta.Layout.ch_stride
                in
                let placed = rot isolated (-delta) in
                outs.(oc / cpc) <- add_opt outs.(oc / cpc) placed
              done;
              next := !next + t.meta.Layout.channels)
            ts;
          normalize cfg
            {
              meta = out_meta;
              cts = Array.map (function Some ct -> ct | None -> assert false) outs;
            }
        end

  (* --- layout conversion --------------------------------------------- *)

  let convert cfg t ~to_kind =
    if t.meta.Layout.kind = to_kind then t
    else begin
      match to_kind with
      | Layout.CHW ->
          (* HW -> CHW: shift each channel into its block and add; free of
             multiplies because gap slots are zero *)
          let out_meta = Layout.with_channels { t.meta with Layout.kind = Layout.CHW } t.meta.Layout.channels in
          let cpc = out_meta.Layout.ch_per_ct in
          let outs = Array.make (Layout.num_cts out_meta) None in
          Array.iteri
            (fun c ct ->
              let placed = rot ct (-(c mod cpc) * out_meta.Layout.ch_stride) in
              outs.(c / cpc) <- add_opt outs.(c / cpc) placed)
            t.cts;
          { meta = out_meta; cts = Array.map (function Some ct -> ct | None -> assert false) outs }
      | Layout.HW ->
          (* CHW -> HW: extract each channel block and mask off its siblings *)
          let out_meta = Layout.with_channels { t.meta with Layout.kind = Layout.HW; Layout.ch_per_ct = 1 } t.meta.Layout.channels in
          let mask0 = Layout.plain_ct { out_meta with Layout.channels = 1 } 0 (fun _ _ _ -> 1.0) in
          let cts =
            Array.init t.meta.Layout.channels (fun c ->
                let src = t.cts.(Layout.ct_index t.meta c) in
                let moved = rot src ((c mod t.meta.Layout.ch_per_ct) * t.meta.Layout.ch_stride) in
                H.mul_plain moved (H.encode mask0 ~scale:cfg.pm))
          in
          normalize cfg { meta = out_meta; cts }
    end

  (* --- staged kernels: the compiled-plan execution path --------------- *)

  (* Each staged constructor does everything input-independent once —
     geometry, shape checks, plaintext vector construction, constant-scale
     encodes — and returns a closure replaying only the per-inference
     homomorphic work, with accumulation dispatched through the fused HISA
     ops. The closures compute the same per-slot arithmetic in the same
     order as the interpretive kernels above, so outputs are bit-identical
     (asserted by test/test_runtime_prop.ml); what changes is allocation:
     one result ciphertext per accumulate step instead of two, and no
     re-encoding of weights/masks per request. *)
  module Staged = struct
    type op = {
      sg_run : ct_tensor -> ct_tensor;
      sg_mul_rescale : int;  (** fused mulPlain+rescale traversals per inference *)
      sg_rot_acc : int;  (** fused rotate-accumulate steps per inference *)
      sg_mul_acc : int;  (** fused multiply-accumulate steps per inference *)
    }

    let nop_counts run = { sg_run = run; sg_mul_rescale = 0; sg_rot_acc = 0; sg_mul_acc = 0 }

    (* Plaintext staging: encode now while the plan's plaintext [budget]
       lasts (the memory bound on a prepared executor), re-encode per
       inference after. Either way the encode is deterministic, so staging
       cannot change results. *)
    let staged_pt budget build ~scale =
      if !budget > 0 then begin
        decr budget;
        let p = H.encode (build ()) ~scale in
        fun () -> p
      end
      else fun () -> H.encode (build ()) ~scale

    (* Dynamic-scale plaintexts (biases/shifts encode at the scale observed
       mid-inference): the trajectory of a fixed circuit repeats across
       requests, so memoise per (ct index, scale). *)
    let dynamic_pts build_vecs =
      let vecs = lazy (build_vecs ()) in
      let cache = Hashtbl.create 4 in
      fun i ~scale ->
        match Hashtbl.find_opt cache (i, scale) with
        | Some p -> p
        | None ->
            let p = H.encode (Lazy.force vecs).(i) ~scale in
            Hashtbl.add cache (i, scale) p;
            p

    let fold_blocks_fused ct ~count ~stride =
      let acc = ref ct and step = ref (count / 2) in
      while !step >= 1 do
        acc := H.fma_rot !acc !acc (!step * stride);
        step := !step / 2
      done;
      !acc

    let log2i n =
      let rec loop n acc = if n <= 1 then acc else loop (n / 2) (acc + 1) in
      loop n 0

    (* the mulPlain+rescale peephole: mask and renormalise in one traversal *)
    let mask_normalize cfg cts pts =
      Array.mapi (fun i ct -> rescale_toward cfg (H.mul_plain ct (pts.(i) ()))) cts

    let conv2d cfg ~meta ~budget ~weights ~bias ~stride ~padding =
      let cout = weights.Tensor.shape.(0) and cin = weights.Tensor.shape.(1) in
      let kh = weights.Tensor.shape.(2) and kw = weights.Tensor.shape.(3) in
      if cin <> meta.Layout.channels then
        err ~op:"conv2d"
          (Herr.Shape_mismatch
             {
               expected = Printf.sprintf "weights with %d input channels" meta.Layout.channels;
               got =
                 Printf.sprintf "weights %s (%d input channels)" (shape_str weights.Tensor.shape)
                   cin;
             });
      let ph, pw_, out_spatial = conv_geometry meta ~kh ~kw ~stride ~padding in
      let out_meta = Layout.with_channels out_spatial cout in
      check_taps ~op:"conv2d" meta (tap_rotation meta ~dy:ph ~dx:pw_);
      let w_at o c dy dx = Tensor.get weights [| o; c; dy; dx |] in
      let bias_pts =
        Option.map
          (fun bs -> dynamic_pts (fun () -> Layout.plains out_meta (fun c _ _ -> bs.(c))))
          bias
      in
      let add_bias t' =
        match bias_pts with
        | None -> t'
        | Some dyn ->
            let scale_now = int_of_float (H.scale_of t'.cts.(0)) in
            { t' with cts = Array.mapi (fun i ct -> H.add_plain ct (dyn i ~scale:scale_now)) t'.cts }
      in
      match meta.Layout.kind with
      | Layout.HW ->
          (* taps per output channel, in the interpretive loop order *)
          let taps =
            Array.init cout (fun o ->
                let l = ref [] in
                for c = 0 to cin - 1 do
                  for dy = 0 to kh - 1 do
                    for dx = 0 to kw - 1 do
                      let w = w_at o c dy dx in
                      if w <> 0.0 then
                        l := (c, tap_rotation meta ~dy:(dy - ph) ~dx:(dx - pw_), w) :: !l
                    done
                  done
                done;
                List.rev !l)
          in
          let nout = Layout.num_cts out_meta in
          let mask_pts =
            Array.init nout (fun j ->
                staged_pt budget (fun () -> Layout.plain_ct out_meta j (fun _ _ _ -> 1.0)) ~scale:cfg.pm)
          in
          let run t =
            let rotated = Hashtbl.create 64 in
            let rotated_ct j amount =
              match Hashtbl.find_opt rotated (j, amount) with
              | Some ct -> ct
              | None ->
                  let ct = rot t.cts.(j) amount in
                  Hashtbl.replace rotated (j, amount) ct;
                  ct
            in
            let out_cts =
              Array.init cout (fun o ->
                  match taps.(o) with
                  | [] -> H.mul_scalar t.cts.(0) 0.0 ~scale:cfg.pu
                  | (c0, a0, w0) :: rest ->
                      List.fold_left
                        (fun acc (c, a, w) -> H.fma_scalar acc (rotated_ct c a) w ~scale:cfg.pu)
                        (H.mul_scalar (rotated_ct c0 a0) w0 ~scale:cfg.pu)
                        rest)
            in
            add_bias { meta = out_meta; cts = mask_normalize cfg out_cts mask_pts }
          in
          {
            sg_run = run;
            sg_mul_rescale = nout;
            sg_rot_acc = 0;
            sg_mul_acc =
              Array.fold_left (fun a l -> a + Stdlib.max 0 (List.length l - 1)) 0 taps;
          }
      | Layout.CHW ->
          let cpc = meta.Layout.ch_per_ct in
          let in_cts_n = Layout.num_cts meta in
          let mid_meta = Layout.with_channels out_spatial cin in
          let out_cpc = out_meta.Layout.ch_per_ct in
          let out_ct_count = Layout.num_cts out_meta in
          let taps =
            Array.init cout (fun o ->
                let l = ref [] in
                for j = 0 to in_cts_n - 1 do
                  for dy = 0 to kh - 1 do
                    for dx = 0 to kw - 1 do
                      let build () = Layout.plain_ct mid_meta j (fun c _ _ -> w_at o c dy dx) in
                      if Array.exists (fun v -> v <> 0.0) (build ()) then begin
                        let amount = tap_rotation meta ~dy:(dy - ph) ~dx:(dx - pw_) in
                        l := (j, amount, staged_pt budget build ~scale:cfg.pw) :: !l
                      end
                    done
                  done
                done;
                List.rev !l)
          in
          let mask_pts =
            Array.init cout (fun o ->
                staged_pt budget
                  (fun () ->
                    Layout.plain_ct out_meta (o / out_cpc) (fun c _ _ -> if c = o then 1.0 else 0.0))
                  ~scale:cfg.pm)
          in
          let run t =
            let rotated = Hashtbl.create 64 in
            let rotated_ct j amount =
              match Hashtbl.find_opt rotated (j, amount) with
              | Some ct -> ct
              | None ->
                  let ct = rot t.cts.(j) amount in
                  Hashtbl.replace rotated (j, amount) ct;
                  ct
            in
            let outs = Array.make out_ct_count None in
            for o = 0 to cout - 1 do
              let acc = ref None in
              List.iter
                (fun (j, amount, p) ->
                  let x = rotated_ct j amount in
                  acc :=
                    Some
                      (match !acc with
                      | None -> H.mul_plain x (p ())
                      | Some a -> H.fma_plain a x (p ())))
                taps.(o);
              let acc =
                match !acc with
                | Some ct -> ct
                | None -> H.mul_scalar t.cts.(0) 0.0 ~scale:cfg.pw
              in
              let folded =
                if cpc > 1 then fold_blocks_fused acc ~count:cpc ~stride:meta.Layout.ch_stride
                else acc
              in
              let placed = rot folded (-(o mod out_cpc) * out_meta.Layout.ch_stride) in
              let m = mask_pts.(o) () in
              outs.(o / out_cpc) <-
                (match outs.(o / out_cpc) with
                | None -> Some (H.mul_plain placed m)
                | Some a -> Some (H.fma_plain a placed m))
            done;
            let cts = Array.map (function Some ct -> rescale_toward cfg ct | None -> assert false) outs in
            add_bias { meta = out_meta; cts }
          in
          {
            sg_run = run;
            sg_mul_rescale = out_ct_count;
            sg_rot_acc = (if cpc > 1 then cout * log2i cpc else 0);
            sg_mul_acc =
              Array.fold_left (fun a l -> a + Stdlib.max 0 (List.length l - 1)) 0 taps
              + Stdlib.max 0 (cout - out_ct_count);
          }

    let avg_pool cfg ~meta ~budget ~ksize ~stride =
      let taps = ref [] in
      for dy = 0 to ksize - 1 do
        for dx = 0 to ksize - 1 do
          if dy <> 0 || dx <> 0 then taps := tap_rotation meta ~dy ~dx :: !taps
        done
      done;
      let taps = List.rev !taps in
      let out_meta =
        Layout.after_stride
          (Layout.with_spatial meta
             ~height:(meta.Layout.height - ksize + 1)
             ~width:(meta.Layout.width - ksize + 1))
          stride
      in
      let inv = 1.0 /. float_of_int (ksize * ksize) in
      let n = Layout.num_cts out_meta in
      let mask_pts =
        Array.init n (fun j ->
            staged_pt budget (fun () -> Layout.plain_ct out_meta j (fun _ _ _ -> inv)) ~scale:cfg.pm)
      in
      let run t =
        let summed =
          Array.map (fun ct -> List.fold_left (fun acc a -> H.fma_rot acc ct a) ct taps) t.cts
        in
        { meta = out_meta; cts = mask_normalize cfg summed mask_pts }
      in
      { sg_run = run; sg_mul_rescale = n; sg_rot_acc = n * List.length taps; sg_mul_acc = 0 }

    let global_avg_pool cfg ~meta ~budget =
      let is_pow2 n = n > 0 && n land (n - 1) = 0 in
      let h = meta.Layout.height and w = meta.Layout.width in
      let out_meta = Layout.with_spatial meta ~height:1 ~width:1 in
      let inv = 1.0 /. float_of_int (h * w) in
      let n = Layout.num_cts out_meta in
      let mask_pts =
        Array.init n (fun j ->
            staged_pt budget (fun () -> Layout.plain_ct out_meta j (fun _ _ _ -> inv)) ~scale:cfg.pm)
      in
      let run t =
        let summed =
          Array.map
            (fun ct ->
              let row_sum =
                if is_pow2 h then fold_blocks_fused ct ~count:h ~stride:meta.Layout.row_stride
                else begin
                  let acc = ref ct in
                  for i = 1 to h - 1 do
                    acc := H.fma_rot !acc ct (i * meta.Layout.row_stride)
                  done;
                  !acc
                end
              in
              if is_pow2 w then fold_blocks_fused row_sum ~count:w ~stride:meta.Layout.col_stride
              else begin
                let acc = ref row_sum in
                for j = 1 to w - 1 do
                  acc := H.fma_rot !acc row_sum (j * meta.Layout.col_stride)
                done;
                !acc
              end)
            t.cts
        in
        { meta = out_meta; cts = mask_normalize cfg summed mask_pts }
      in
      let per_ct =
        (if is_pow2 h then log2i h else h - 1) + if is_pow2 w then log2i w else w - 1
      in
      { sg_run = run; sg_mul_rescale = n; sg_rot_acc = n * per_ct; sg_mul_acc = 0 }

    let batch_norm cfg ~meta ~budget ~scale ~shift =
      let n = Layout.num_cts meta in
      let scale_pts =
        Array.init n (fun j ->
            staged_pt budget (fun () -> Layout.plain_ct meta j (fun c _ _ -> scale.(c))) ~scale:cfg.pw)
      in
      let shift_pts = dynamic_pts (fun () -> Layout.plains meta (fun c _ _ -> shift.(c))) in
      let run t =
        let scaled = mask_normalize cfg t.cts scale_pts in
        let s_now = int_of_float (H.scale_of scaled.(0)) in
        { t with cts = Array.mapi (fun i ct -> H.add_plain ct (shift_pts i ~scale:s_now)) scaled }
      in
      { sg_run = run; sg_mul_rescale = n; sg_rot_acc = 0; sg_mul_acc = 0 }

    let matmul cfg ~meta ~budget ~weights ~bias =
      let out_dim = weights.Tensor.shape.(0) in
      let in_dim = weights.Tensor.shape.(1) in
      if in_dim <> meta.Layout.channels * meta.Layout.height * meta.Layout.width then
        err ~op:"matmul"
          (Herr.Shape_mismatch
             {
               expected =
                 Printf.sprintf "weights with input dimension %d (= %dx%dx%d)"
                   (meta.Layout.channels * meta.Layout.height * meta.Layout.width)
                   meta.Layout.channels meta.Layout.height meta.Layout.width;
               got = Printf.sprintf "weights %s" (shape_str weights.Tensor.shape);
             });
      let out_meta = Layout.vector_meta ~slots:H.slots ~length:out_dim ~twin:meta.Layout.twin () in
      let n_in = Layout.num_cts meta in
      let w_pts =
        Array.init out_dim (fun o ->
            Array.init n_in (fun j ->
                staged_pt budget
                  (fun () ->
                    Layout.plain_ct meta j (fun c h w_ ->
                        Tensor.get weights [| o; Layout.flat_index meta ~c ~h ~w:w_ |]))
                  ~scale:cfg.pw))
      in
      let mask_pts =
        Array.init out_dim (fun o ->
            staged_pt budget
              (fun () ->
                let mask = Array.make H.slots 0.0 in
                mask.(Layout.slot_of out_meta ~c:o ~h:0 ~w:0) <- 1.0;
                if meta.Layout.twin then mask.(Layout.slot_of out_meta ~c:o ~h:0 ~w:0 + 1) <- 1.0;
                mask)
              ~scale:cfg.pm)
      in
      let bias_pts =
        Option.map
          (fun bs -> dynamic_pts (fun () -> Layout.plains out_meta (fun c _ _ -> bs.(c))))
          bias
      in
      let run t =
        let out = ref None in
        for o = 0 to out_dim - 1 do
          let partial = ref None in
          Array.iteri
            (fun j ct ->
              let p = w_pts.(o).(j) () in
              partial :=
                Some
                  (match !partial with
                  | None -> H.mul_plain ct p
                  | Some a -> H.fma_plain a ct p))
            t.cts;
          let partial = match !partial with Some p -> p | None -> assert false in
          let total =
            if meta.Layout.twin then fold_blocks_fused partial ~count:(H.slots / 2) ~stride:2
            else fold_blocks_fused partial ~count:H.slots ~stride:1
          in
          let m = mask_pts.(o) () in
          out :=
            Some
              (match !out with
              | None -> H.mul_plain total m
              | Some a -> H.fma_plain a total m)
        done;
        let out_ct = rescale_toward cfg (match !out with Some ct -> ct | None -> assert false) in
        match bias_pts with
        | None -> { meta = out_meta; cts = [| out_ct |] }
        | Some dyn ->
            let s_now = int_of_float (H.scale_of out_ct) in
            { meta = out_meta; cts = [| H.add_plain out_ct (dyn 0 ~scale:s_now) |] }
      in
      {
        sg_run = run;
        sg_mul_rescale = 1;
        sg_rot_acc = out_dim * log2i H.slots;
        sg_mul_acc = (out_dim * Stdlib.max 0 (n_in - 1)) + Stdlib.max 0 (out_dim - 1);
      }

    let poly_act cfg ~a ~b = nop_counts (fun t -> poly_act cfg t ~a ~b)

    (* square, loop-jammed: multiply and renormalise in one traversal *)
    let square cfg =
      nop_counts (fun t -> { t with cts = Array.map (fun x -> rescale_toward cfg (H.mul x x)) t.cts })

    let flatten = nop_counts (fun t -> flatten t)

    let convert cfg ~meta ~budget ~to_kind =
      if meta.Layout.kind = to_kind then nop_counts (fun t -> t)
      else begin
        let out_meta = Layout.converted meta ~to_kind in
        match to_kind with
        | Layout.CHW ->
            let cpc = out_meta.Layout.ch_per_ct in
            let n_out = Layout.num_cts out_meta in
            let run t =
              let outs = Array.make n_out None in
              Array.iteri
                (fun c ct ->
                  let k = -(c mod cpc) * out_meta.Layout.ch_stride in
                  outs.(c / cpc) <-
                    (match outs.(c / cpc) with
                    | None -> Some (rot ct k)
                    | Some a -> Some (H.fma_rot a ct k)))
                t.cts;
              { meta = out_meta; cts = Array.map (function Some ct -> ct | None -> assert false) outs }
            in
            {
              sg_run = run;
              sg_mul_rescale = 0;
              sg_rot_acc = Stdlib.max 0 (meta.Layout.channels - n_out);
              sg_mul_acc = 0;
            }
        | Layout.HW ->
            let mask0_pt =
              staged_pt budget
                (fun () -> Layout.plain_ct { out_meta with Layout.channels = 1 } 0 (fun _ _ _ -> 1.0))
                ~scale:cfg.pm
            in
            let run t =
              let cts =
                Array.init meta.Layout.channels (fun c ->
                    let src = t.cts.(Layout.ct_index meta c) in
                    let moved = rot src ((c mod meta.Layout.ch_per_ct) * meta.Layout.ch_stride) in
                    rescale_toward cfg (H.mul_plain moved (mask0_pt ())))
              in
              { meta = out_meta; cts }
            in
            {
              sg_run = run;
              sg_mul_rescale = meta.Layout.channels;
              sg_rot_acc = 0;
              sg_mul_acc = 0;
            }
      end
  end
end
