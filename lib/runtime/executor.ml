(* Executes a tensor circuit against a HISA backend with a concrete layout
   assignment — the runtime half of CHET. The compiler (lib/core) calls this
   executor with analysis backends to "dynamically unroll the data-flow graph
   on the fly" (§5.1); deployment calls it with a real scheme backend. *)

module Hisa = Chet_hisa.Hisa
module Herr = Chet_hisa.Herr
module Cancel = Chet_hisa.Cancel
module Circuit = Chet_nn.Circuit
module Tensor = Chet_tensor.Tensor
module Tracer = Chet_obs.Tracer

(* Human description of a node for error context ("which layer broke"). *)
let op_name (node : Circuit.node) =
  match node.Circuit.op with
  | Circuit.Input { name; _ } -> Printf.sprintf "input %S" name
  | Circuit.Conv2d { weights; stride; _ } ->
      Printf.sprintf "conv2d %dx%d/%d" weights.Tensor.shape.(2) weights.Tensor.shape.(3) stride
  | Circuit.MatMul { weights; _ } -> Printf.sprintf "matmul ->%d" weights.Tensor.shape.(0)
  | Circuit.AvgPool { ksize; stride; _ } -> Printf.sprintf "avg_pool %dx%d/%d" ksize ksize stride
  | Circuit.GlobalAvgPool _ -> "global_avg_pool"
  | Circuit.PolyAct _ -> "poly_act"
  | Circuit.Square _ -> "square"
  | Circuit.BatchNorm _ -> "batch_norm"
  | Circuit.Flatten _ -> "flatten"
  | Circuit.Concat _ -> "concat"
  | Circuit.Residual _ -> "residual"

(* The four pruned layout policies of §5.3. *)
type layout_policy =
  | All_hw
  | All_chw
  | Hw_conv_chw_rest
  | Chw_fc_hw_before

let policy_name = function
  | All_hw -> "HW"
  | All_chw -> "CHW"
  | Hw_conv_chw_rest -> "HW-conv, CHW-rest"
  | Chw_fc_hw_before -> "CHW-fc, HW-before"

let all_policies = [ All_hw; All_chw; Hw_conv_chw_rest; Chw_fc_hw_before ]

(* Assign a layout kind to every node's output under a policy. *)
let assign policy circuit =
  let assignment = Hashtbl.create 64 in
  let seen_fc = ref false in
  List.iter
    (fun (node : Circuit.node) ->
      let kind =
        match policy with
        | All_hw -> Layout.HW
        | All_chw -> Layout.CHW
        | Hw_conv_chw_rest -> begin
            match node.Circuit.op with
            | Circuit.Conv2d _ -> Layout.HW
            | _ -> Layout.CHW
          end
        | Chw_fc_hw_before ->
            if !seen_fc then Layout.CHW else Layout.HW
      in
      (match node.Circuit.op with Circuit.MatMul _ -> seen_fc := true | _ -> ());
      Hashtbl.replace assignment node.Circuit.id kind)
    (Circuit.topo_order circuit);
  fun (node : Circuit.node) ->
    match Hashtbl.find_opt assignment node.Circuit.id with
    | Some kind -> kind
    | None ->
        (* the node is not part of the circuit this assignment was built
           for — a diagnosable wiring bug, not a bare [Not_found] *)
        Herr.raise_err ~backend:"executor" ~op:"assign" ~node_id:node.Circuit.id
          ~layer:(op_name node)
          (Herr.Missing_node { node_id = node.Circuit.id })

(* Margin needed by the circuit's Same convolutions (border head-room), in
   *input-image pixels*: a Same convolution applied after striding ops needs
   its radius multiplied by the accumulated stride, because the layout's
   physical strides have been dilated by then. *)
let required_margin circuit =
  let cum = Hashtbl.create 64 in
  let cum_of (n : Circuit.node) = try Hashtbl.find cum n.Circuit.id with Not_found -> 1 in
  List.fold_left
    (fun acc (node : Circuit.node) ->
      let in_cum =
        match Circuit.(node.op) with
        | Circuit.Input _ -> 1
        | Circuit.Conv2d { input; _ } | Circuit.MatMul { input; _ } | Circuit.AvgPool { input; _ }
        | Circuit.PolyAct { input; _ } | Circuit.BatchNorm { input; _ } ->
            cum_of input
        | Circuit.GlobalAvgPool n | Circuit.Square n | Circuit.Flatten n -> cum_of n
        | Circuit.Concat ns -> List.fold_left (fun a n -> Stdlib.max a (cum_of n)) 1 ns
        | Circuit.Residual (x, y) -> Stdlib.max (cum_of x) (cum_of y)
      in
      let out_cum, need =
        match node.Circuit.op with
        | Circuit.Conv2d { weights; stride; padding; _ } ->
            let radius =
              match padding with
              | Tensor.Same -> weights.Tensor.shape.(2) / 2
              | Tensor.Valid -> 0
            in
            (in_cum * stride, radius * in_cum)
        | Circuit.AvgPool { stride; _ } -> (in_cum * stride, 0)
        | _ -> (in_cum, 0)
      in
      Hashtbl.replace cum node.Circuit.id out_cum;
      Stdlib.max acc need)
    1 (Circuit.topo_order circuit)

(* Sentinel threading (DESIGN.md §16): [sn_probe] is the known input packed
   into the layout's twin slots at encrypt time; [sn_verify] receives the
   decrypted twin tensor after the run and raises a typed
   [Herr.Integrity_violation] if it strays from the clear-reference
   prediction. The executor stays policy-free: what "too far" means belongs
   to the caller (lib/core's Integrity module). *)
type sentinel = {
  sn_probe : Tensor.t;
  sn_verify : Tensor.t -> unit;
}

module Make (H : Hisa.S) = struct
  module K = Kernels.Make (H)

  let input_meta ?margin ?(twin = false) circuit ~kind =
    let margin = match margin with Some m -> m | None -> required_margin circuit in
    let node = circuit.Circuit.input in
    match node.Circuit.shape with
    | [| c; h; w |] ->
        Layout.create ~kind ~slots:H.slots ~channels:c ~height:h ~width:w ~margin ~twin ()
    | shape ->
        Herr.raise_err ~backend:"executor" ~op:"input_meta" ~node_id:node.Circuit.id
          ~layer:(op_name node)
          (Herr.Shape_mismatch
             {
               expected = "[c; h; w]";
               got =
                 "[" ^ String.concat "; " (Array.to_list (Array.map string_of_int shape)) ^ "]";
             })

  (* Run the circuit on an already-encrypted input tensor with an arbitrary
     per-node layout assignment (the exhaustive-search ablation uses this
     directly; the four pruned policies go through {!run_encrypted}).

     [cancel] is polled at every node boundary — the same granularity the
     per-node spans hook — so a tripped token frees the worker within one
     node instead of one full inference (DESIGN.md §13). The poll raises the
     typed [Herr.Cancelled] carrying the node at which it fired. *)
  let run_encrypted_with ?cancel cfg circuit ~kind_of (input : K.ct_tensor) =
    let values : (int, K.ct_tensor) Hashtbl.t = Hashtbl.create 64 in
    let raw_value (node : Circuit.node) =
      match Hashtbl.find_opt values node.Circuit.id with
      | Some v -> v
      | None ->
          Herr.raise_err ~backend:"executor" ~op:"lookup"
            (Herr.Missing_node { node_id = node.Circuit.id })
    in
    let value (node : Circuit.node) ~want =
      let v = raw_value node in
      if v.K.meta.Layout.kind = want then v else K.convert cfg v ~to_kind:want
    in
    List.iter
      (fun (node : Circuit.node) ->
        (match cancel with
        | Some tok -> Cancel.check tok ~node_id:node.Circuit.id ~layer:(op_name node)
        | None -> ());
        let kind = kind_of node in
        (* every failure below this point carries the circuit node and a
           human description of the layer that caused it *)
        let compute () =
          Herr.with_node ~node_id:node.Circuit.id ~layer:(op_name node) (fun () ->
              match node.Circuit.op with
              | Circuit.Input _ ->
                  if input.K.meta.Layout.kind = kind then input
                  else K.convert cfg input ~to_kind:kind
              | Circuit.Conv2d { input = src; weights; bias; stride; padding } ->
                  K.conv2d cfg (value src ~want:kind) ~weights ~bias ~stride ~padding
              | Circuit.MatMul { input = src; weights; bias } ->
                  (* matmul reads any layout directly (the weight plaintexts
                     are placed by the input's own metadata), and its output
                     is a dense vector regardless of the assigned kind *)
                  K.matmul cfg (raw_value src) ~weights ~bias
              | Circuit.AvgPool { input = src; ksize; stride } ->
                  K.avg_pool cfg (value src ~want:kind) ~ksize ~stride
              | Circuit.GlobalAvgPool src -> K.global_avg_pool cfg (value src ~want:kind)
              | Circuit.PolyAct { input = src; a; b } ->
                  K.poly_act cfg (value src ~want:kind) ~a ~b
              | Circuit.Square src -> K.square cfg (value src ~want:kind)
              | Circuit.BatchNorm { input = src; scale; shift } ->
                  K.batch_norm cfg (value src ~want:kind) ~scale ~shift
              | Circuit.Flatten src -> K.flatten (value src ~want:kind)
              | Circuit.Concat srcs -> K.concat cfg (List.map (fun s -> value s ~want:kind) srcs)
              | Circuit.Residual (a, b) -> K.residual (value a ~want:kind) (value b ~want:kind))
        in
        let result =
          (* one span per circuit node when tracing is on: node id, layer
             description, layout, and — annotated after the node ran — the
             HISA op count attributable to it plus the result's scale and
             remaining modulus level. Disabled tracing costs one atomic
             load per node. *)
          if not (Tracer.enabled ()) then compute ()
          else
            Tracer.with_span ~cat:"executor"
              ~attrs:
                [
                  ("node_id", Tracer.Int node.Circuit.id);
                  ("layer", Tracer.Str (op_name node));
                  ("layout", Tracer.Str (match kind with Layout.HW -> "HW" | Layout.CHW -> "CHW"));
                ]
              (op_name node)
              (fun () ->
                let ops0 = Tracer.op_count () in
                let r = compute () in
                Tracer.annotate "ops" (Tracer.Int (Tracer.op_count () - ops0));
                if Array.length r.K.cts > 0 then begin
                  Tracer.annotate "scale" (Tracer.Float (H.scale_of r.K.cts.(0)));
                  let env = H.env_of r.K.cts.(0) in
                  Tracer.annotate "level"
                    (Tracer.Int
                       (if env.Hisa.env_r > 0 then env.Hisa.env_r else env.Hisa.env_log_q))
                end;
                r)
        in
        Hashtbl.replace values node.Circuit.id result)
      (Circuit.topo_order circuit);
    raw_value circuit.Circuit.output

  let run_encrypted ?cancel cfg circuit ~policy input =
    run_encrypted_with ?cancel cfg circuit ~kind_of:(assign policy circuit) input

  (* Full client–server roundtrip on a cleartext image: encrypt with the
     layout the policy assigns to the input, run, decrypt.

     [twin] runs on an interleaved-twin layout without verification — the
     compiler's analysis passes use it so a sentinel deployment's parameter,
     cost and rotation selection see the geometry it will actually execute.
     [sentinel] implies [twin] and additionally packs/verifies the probe. *)
  let run ?cancel ?sentinel ?(twin = false) cfg circuit ~policy image =
    (* compute the assignment once and reuse it for the run itself, rather
       than paying [assign] a second time inside [run_encrypted] *)
    let kind_of = assign policy circuit in
    let twin = twin || sentinel <> None in
    let meta = input_meta ~twin circuit ~kind:(kind_of circuit.Circuit.input) in
    let probe = Option.map (fun s -> s.sn_probe) sentinel in
    let encrypted = K.encrypt_tensor ?probe cfg meta image in
    let out = run_encrypted_with ?cancel cfg circuit ~kind_of encrypted in
    match sentinel with
    | None -> K.decrypt_tensor out
    | Some s ->
        let primary, twin_out = K.decrypt_parts out in
        (match twin_out with
        | Some t -> s.sn_verify t
        | None ->
            Herr.raise_err ~backend:"executor" ~op:"sentinel"
              (Herr.Invalid_op { reason = "output layout lost its twin slots" }));
        primary
end
