module Tensor = Chet_tensor.Tensor
module Herr = Chet_hisa.Herr

let err ~op e = Herr.raise_err ~backend:"layout" ~op e

type kind = HW | CHW

type meta = {
  kind : kind;
  channels : int;
  height : int;
  width : int;
  offset : int;
  col_stride : int;
  row_stride : int;
  ch_stride : int;
  ch_per_ct : int;
  slots : int;
  twin : bool;
}

let floor_pow2 n =
  let rec loop p = if p * 2 <= n then loop (p * 2) else p in
  if n < 1 then 0 else loop 1

(* extent of one channel block, inclusive of the trailing margin *)
let channel_extent ~height ~width ~margin ~row_stride =
  ((height + (2 * margin)) * row_stride) + (2 * margin) + width

(* Twin (sentinel) layouts interleave: logical position [s] of the plain
   layout lives at physical slot [2s], and slot [2s+1] carries the sentinel
   copy of the same position. Every stride and offset is doubled, so every
   rotation amount any kernel derives from this meta is even — and rotation
   by an even amount preserves slot parity even across wrap-around, which is
   what guarantees the primary (even) and sentinel (odd) computations can
   never read each other's slots. *)
let spread_of twin = if twin then 2 else 1

let create ~kind ~slots ~channels ~height ~width ?(margin = 2) ?(twin = false) () =
  let spread = spread_of twin in
  let base_row = width + (2 * margin) in
  let base_ch = channel_extent ~height ~width ~margin ~row_stride:base_row in
  let row_stride = spread * base_row in
  let ch_stride = spread * base_ch in
  let offset = spread * ((margin * base_row) + margin) in
  if ch_stride > slots then err ~op:"create" (Herr.Slot_overflow { slots; requested = ch_stride });
  let rec ceil_pow2 p n = if p >= n then p else ceil_pow2 (p * 2) n in
  let ch_per_ct =
    match kind with
    | HW -> 1
    | CHW -> Stdlib.min (floor_pow2 (slots / ch_stride)) (ceil_pow2 1 channels)
  in
  {
    kind;
    channels;
    height;
    width;
    offset;
    col_stride = spread;
    row_stride;
    ch_stride;
    ch_per_ct;
    slots;
    twin;
  }

let vector_meta ~slots ~length ?(twin = false) () =
  let spread = spread_of twin in
  if length * spread > slots then
    err ~op:"vector_meta" (Herr.Slot_overflow { slots; requested = length * spread });
  {
    kind = CHW;
    channels = length;
    height = 1;
    width = 1;
    offset = 0;
    col_stride = spread;
    row_stride = spread;
    ch_stride = spread;
    ch_per_ct =
      Stdlib.max 1 (Stdlib.min (slots / spread) (floor_pow2 (Stdlib.max 1 length) * 2));
    slots;
    twin;
  }

let num_cts meta = (meta.channels + meta.ch_per_ct - 1) / meta.ch_per_ct
let ct_index meta c = c / meta.ch_per_ct

let slot_of meta ~c ~h ~w =
  meta.offset + ((c mod meta.ch_per_ct) * meta.ch_stride) + (h * meta.row_stride)
  + (w * meta.col_stride)

let flat_index meta ~c ~h ~w = (((c * meta.height) + h) * meta.width) + w

let iter_positions meta f =
  for c = 0 to meta.channels - 1 do
    for h = 0 to meta.height - 1 do
      for w = 0 to meta.width - 1 do
        f c h w
      done
    done
  done

let check_shape ~op meta t =
  if
    t.Tensor.shape <> [| meta.channels; meta.height; meta.width |]
    && t.Tensor.shape <> [| meta.channels * meta.height * meta.width |]
  then
    err ~op
      (Herr.Shape_mismatch
         {
           expected = Printf.sprintf "[%d; %d; %d]" meta.channels meta.height meta.width;
           got =
             "[" ^ String.concat "; " (Array.to_list (Array.map string_of_int t.Tensor.shape)) ^ "]";
         })

let pack ?probe meta t =
  check_shape ~op:"pack" meta t;
  (match probe with
  | Some p ->
      if not meta.twin then
        err ~op:"pack" (Herr.Invalid_op { reason = "sentinel probe on a layout without twin slots" });
      check_shape ~op:"pack" meta p
  | None -> ());
  let out = Array.init (num_cts meta) (fun _ -> Array.make meta.slots 0.0) in
  iter_positions meta (fun c h w ->
      let v = t.Tensor.data.(flat_index meta ~c ~h ~w) in
      out.(ct_index meta c).(slot_of meta ~c ~h ~w) <- v;
      match probe with
      | Some p ->
          out.(ct_index meta c).(slot_of meta ~c ~h ~w + 1) <-
            p.Tensor.data.(flat_index meta ~c ~h ~w)
      | None -> ());
  out

let unpack meta vecs =
  let t = Tensor.create [| meta.channels; meta.height; meta.width |] in
  iter_positions meta (fun c h w ->
      t.Tensor.data.(flat_index meta ~c ~h ~w) <- vecs.(ct_index meta c).(slot_of meta ~c ~h ~w));
  t

(* The sentinel side of {!unpack}: the tensor the odd (twin) slots carry. *)
let unpack_twin meta vecs =
  if not meta.twin then
    err ~op:"unpack_twin" (Herr.Invalid_op { reason = "layout has no twin slots" });
  let t = Tensor.create [| meta.channels; meta.height; meta.width |] in
  iter_positions meta (fun c h w ->
      t.Tensor.data.(flat_index meta ~c ~h ~w) <-
        vecs.(ct_index meta c).(slot_of meta ~c ~h ~w + 1));
  t

let plains meta f =
  let out = Array.init (num_cts meta) (fun _ -> Array.make meta.slots 0.0) in
  iter_positions meta (fun c h w ->
      let v = f c h w in
      out.(ct_index meta c).(slot_of meta ~c ~h ~w) <- v;
      if meta.twin then out.(ct_index meta c).(slot_of meta ~c ~h ~w + 1) <- v);
  out

let plain_ct meta j f =
  let out = Array.make meta.slots 0.0 in
  let c_lo = j * meta.ch_per_ct in
  let c_hi = Stdlib.min meta.channels (c_lo + meta.ch_per_ct) - 1 in
  for c = c_lo to c_hi do
    for h = 0 to meta.height - 1 do
      for w = 0 to meta.width - 1 do
        let v = f c h w in
        out.(slot_of meta ~c ~h ~w) <- v;
        if meta.twin then out.(slot_of meta ~c ~h ~w + 1) <- v
      done
    done
  done;
  out

let valid_mask meta = plains meta (fun _ _ _ -> 1.0)

let with_spatial meta ~height ~width =
  if height > meta.height || width > meta.width then
    err ~op:"with_spatial"
      (Herr.Invalid_op
         {
           reason =
             Printf.sprintf "can only shrink the spatial extent: %dx%d -> %dx%d" meta.height
               meta.width height width;
         });
  { meta with height; width }

let after_stride meta s =
  if s < 1 then
    err ~op:"after_stride"
      (Herr.Invalid_op { reason = Printf.sprintf "stride must be >= 1, got %d" s });
  {
    meta with
    height = ((meta.height - 1) / s) + 1;
    width = ((meta.width - 1) / s) + 1;
    col_stride = meta.col_stride * s;
    row_stride = meta.row_stride * s;
  }

let with_channels meta channels =
  (* keep block geometry; recompute packing density for the new channel
     count, never exceeding the existing block capacity *)
  let ch_per_ct =
    if meta.kind = HW then 1
    else begin
      let cap = Stdlib.max 1 (floor_pow2 (meta.slots / Stdlib.max 1 meta.ch_stride)) in
      let rec ceil_pow2 p = if p >= channels then p else ceil_pow2 (p * 2) in
      Stdlib.min cap (ceil_pow2 1)
    end
  in
  { meta with channels; ch_per_ct }

(* Meta of a layout-converted tensor — must mirror Kernels.convert's meta
   arithmetic exactly (the plan's static meta inference relies on it, and
   residual compares metas structurally). *)
let converted meta ~to_kind =
  if meta.kind = to_kind then meta
  else begin
    match to_kind with
    | CHW -> with_channels { meta with kind = CHW } meta.channels
    | HW -> with_channels { meta with kind = HW; ch_per_ct = 1 } meta.channels
  end

let max_extent meta =
  meta.offset
  + ((meta.ch_per_ct - 1) * meta.ch_stride)
  + ((meta.height - 1) * meta.row_stride)
  + ((meta.width - 1) * meta.col_stride)

let max_rotation_safe meta d =
  let d = abs d in
  let occupied = max_extent meta + if meta.twin then 1 else 0 in
  meta.offset - d >= 0 && occupied + d < meta.slots

let pp fmt meta =
  Format.fprintf fmt "%s[%dx%dx%d] cpc=%d strides=(%d,%d) ch=%d off=%d slots=%d%s"
    (match meta.kind with HW -> "HW" | CHW -> "CHW")
    meta.channels meta.height meta.width meta.ch_per_ct meta.col_stride meta.row_stride
    meta.ch_stride meta.offset meta.slots
    (if meta.twin then " twin" else "")
