module Tensor = Chet_tensor.Tensor
module Herr = Chet_hisa.Herr

let err ~op e = Herr.raise_err ~backend:"layout" ~op e

type kind = HW | CHW

type meta = {
  kind : kind;
  channels : int;
  height : int;
  width : int;
  offset : int;
  col_stride : int;
  row_stride : int;
  ch_stride : int;
  ch_per_ct : int;
  slots : int;
}

let floor_pow2 n =
  let rec loop p = if p * 2 <= n then loop (p * 2) else p in
  if n < 1 then 0 else loop 1

(* extent of one channel block, inclusive of the trailing margin *)
let channel_extent ~height ~width ~margin ~row_stride =
  ((height + (2 * margin)) * row_stride) + (2 * margin) + width

let create ~kind ~slots ~channels ~height ~width ?(margin = 2) () =
  let row_stride = width + (2 * margin) in
  let ch_stride = channel_extent ~height ~width ~margin ~row_stride in
  let offset = (margin * row_stride) + margin in
  if ch_stride > slots then err ~op:"create" (Herr.Slot_overflow { slots; requested = ch_stride });
  let rec ceil_pow2 p n = if p >= n then p else ceil_pow2 (p * 2) n in
  let ch_per_ct =
    match kind with
    | HW -> 1
    | CHW -> Stdlib.min (floor_pow2 (slots / ch_stride)) (ceil_pow2 1 channels)
  in
  { kind; channels; height; width; offset; col_stride = 1; row_stride; ch_stride; ch_per_ct; slots }

let vector_meta ~slots ~length =
  if length > slots then err ~op:"vector_meta" (Herr.Slot_overflow { slots; requested = length });
  {
    kind = CHW;
    channels = length;
    height = 1;
    width = 1;
    offset = 0;
    col_stride = 1;
    row_stride = 1;
    ch_stride = 1;
    ch_per_ct = Stdlib.max 1 (Stdlib.min slots (floor_pow2 (Stdlib.max 1 length) * 2));
    slots;
  }

let num_cts meta = (meta.channels + meta.ch_per_ct - 1) / meta.ch_per_ct
let ct_index meta c = c / meta.ch_per_ct

let slot_of meta ~c ~h ~w =
  meta.offset + ((c mod meta.ch_per_ct) * meta.ch_stride) + (h * meta.row_stride)
  + (w * meta.col_stride)

let flat_index meta ~c ~h ~w = (((c * meta.height) + h) * meta.width) + w

let iter_positions meta f =
  for c = 0 to meta.channels - 1 do
    for h = 0 to meta.height - 1 do
      for w = 0 to meta.width - 1 do
        f c h w
      done
    done
  done

let pack meta t =
  if t.Tensor.shape <> [| meta.channels; meta.height; meta.width |] && t.Tensor.shape <> [| meta.channels * meta.height * meta.width |] then
    err ~op:"pack"
      (Herr.Shape_mismatch
         {
           expected = Printf.sprintf "[%d; %d; %d]" meta.channels meta.height meta.width;
           got =
             "[" ^ String.concat "; " (Array.to_list (Array.map string_of_int t.Tensor.shape)) ^ "]";
         });
  let out = Array.init (num_cts meta) (fun _ -> Array.make meta.slots 0.0) in
  iter_positions meta (fun c h w ->
      let v = t.Tensor.data.(flat_index meta ~c ~h ~w) in
      out.(ct_index meta c).(slot_of meta ~c ~h ~w) <- v);
  out

let unpack meta vecs =
  let t = Tensor.create [| meta.channels; meta.height; meta.width |] in
  iter_positions meta (fun c h w ->
      t.Tensor.data.(flat_index meta ~c ~h ~w) <- vecs.(ct_index meta c).(slot_of meta ~c ~h ~w));
  t

let plains meta f =
  let out = Array.init (num_cts meta) (fun _ -> Array.make meta.slots 0.0) in
  iter_positions meta (fun c h w -> out.(ct_index meta c).(slot_of meta ~c ~h ~w) <- f c h w);
  out

let plain_ct meta j f =
  let out = Array.make meta.slots 0.0 in
  let c_lo = j * meta.ch_per_ct in
  let c_hi = Stdlib.min meta.channels (c_lo + meta.ch_per_ct) - 1 in
  for c = c_lo to c_hi do
    for h = 0 to meta.height - 1 do
      for w = 0 to meta.width - 1 do
        out.(slot_of meta ~c ~h ~w) <- f c h w
      done
    done
  done;
  out

let valid_mask meta = plains meta (fun _ _ _ -> 1.0)

let with_spatial meta ~height ~width =
  if height > meta.height || width > meta.width then
    err ~op:"with_spatial"
      (Herr.Invalid_op
         {
           reason =
             Printf.sprintf "can only shrink the spatial extent: %dx%d -> %dx%d" meta.height
               meta.width height width;
         });
  { meta with height; width }

let after_stride meta s =
  if s < 1 then
    err ~op:"after_stride"
      (Herr.Invalid_op { reason = Printf.sprintf "stride must be >= 1, got %d" s });
  {
    meta with
    height = ((meta.height - 1) / s) + 1;
    width = ((meta.width - 1) / s) + 1;
    col_stride = meta.col_stride * s;
    row_stride = meta.row_stride * s;
  }

let with_channels meta channels =
  (* keep block geometry; recompute packing density for the new channel
     count, never exceeding the existing block capacity *)
  let ch_per_ct =
    if meta.kind = HW then 1
    else begin
      let cap = Stdlib.max 1 (floor_pow2 (meta.slots / Stdlib.max 1 meta.ch_stride)) in
      let rec ceil_pow2 p = if p >= channels then p else ceil_pow2 (p * 2) in
      Stdlib.min cap (ceil_pow2 1)
    end
  in
  { meta with channels; ch_per_ct }

(* Meta of a layout-converted tensor — must mirror Kernels.convert's meta
   arithmetic exactly (the plan's static meta inference relies on it, and
   residual compares metas structurally). *)
let converted meta ~to_kind =
  if meta.kind = to_kind then meta
  else begin
    match to_kind with
    | CHW -> with_channels { meta with kind = CHW } meta.channels
    | HW -> with_channels { meta with kind = HW; ch_per_ct = 1 } meta.channels
  end

let max_extent meta =
  meta.offset
  + ((meta.ch_per_ct - 1) * meta.ch_stride)
  + ((meta.height - 1) * meta.row_stride)
  + ((meta.width - 1) * meta.col_stride)

let max_rotation_safe meta d =
  let d = abs d in
  meta.offset - d >= 0 && max_extent meta + d < meta.slots

let pp fmt meta =
  Format.fprintf fmt "%s[%dx%dx%d] cpc=%d strides=(%d,%d) ch=%d off=%d slots=%d"
    (match meta.kind with HW -> "HW" | CHW -> "CHW")
    meta.channels meta.height meta.width meta.ch_per_ct meta.col_stride meta.row_stride
    meta.ch_stride meta.offset meta.slots
