(* Socket transport for the networked serving layer (DESIGN.md §12).

   The unit of transmission is one Serial frame (REQ1/RSP1/HLTH — already
   tagged, length-carrying and FNV-1a checksummed) wrapped in a 4-byte
   little-endian outer length prefix. The outer prefix is what keeps the
   *stream* synchronised: a frame whose body fails its checksum is still
   fully consumed, so the connection can answer with a typed error and keep
   serving instead of tearing down. Only a transport-level fault — peer gone,
   a read that stalls past its deadline, a declared length over the cap —
   forces the connection closed, because after those the next byte boundary
   is unknowable.

   Reads and writes are deadline-bounded with [Unix.select]; sockets stay
   blocking (plain [Thread]-per-connection servers, no event loop). *)

type addr = Unix_sock of string | Tcp of string * int

let addr_to_string = function
  | Unix_sock path -> "unix:" ^ path
  | Tcp (host, port) -> Printf.sprintf "tcp:%s:%d" host port

let addr_of_string s =
  match String.index_opt s ':' with
  | Some i when String.sub s 0 i = "unix" ->
      let path = String.sub s (i + 1) (String.length s - i - 1) in
      if path = "" then invalid_arg "Wire.addr_of_string: empty unix path";
      Unix_sock path
  | Some i when String.sub s 0 i = "tcp" -> (
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      match String.rindex_opt rest ':' with
      | Some j -> (
          let host = String.sub rest 0 j in
          let port = String.sub rest (j + 1) (String.length rest - j - 1) in
          match int_of_string_opt port with
          | Some p when p > 0 && p < 65536 && host <> "" -> Tcp (host, p)
          | _ -> invalid_arg ("Wire.addr_of_string: bad tcp port in " ^ s))
      | None -> invalid_arg ("Wire.addr_of_string: tcp needs host:port in " ^ s))
  | _ -> invalid_arg ("Wire.addr_of_string: expected unix:PATH or tcp:HOST:PORT, got " ^ s)

let sockaddr_of = function
  | Unix_sock path -> Unix.ADDR_UNIX path
  | Tcp (host, port) ->
      let ip =
        try Unix.inet_addr_of_string host
        with Failure _ -> (
          try (Unix.gethostbyname host).Unix.h_addr_list.(0)
          with Not_found -> invalid_arg ("Wire: unknown host " ^ host))
      in
      Unix.ADDR_INET (ip, port)

let domain_of = function Unix_sock _ -> Unix.PF_UNIX | Tcp _ -> Unix.PF_INET

(* 16 MiB default cap: a micro-model REQ1 is a few KiB; anything larger than
   this is a corrupt or hostile length prefix, not a request. *)
let default_max_frame = 16 * 1024 * 1024

type fault =
  | Closed  (** peer closed (clean EOF or reset) *)
  | Stalled  (** deadline elapsed mid-read or mid-write *)
  | Idle
      (** no frame *started* before the idle deadline: the connection is
          quiet, not broken — distinct from {!Stalled}, which means a frame
          died mid-transmission *)
  | Oversized of int  (** declared frame length beyond the cap *)
  | Io of string  (** any other transport error, by name *)

let fault_name = function
  | Closed -> "connection closed"
  | Stalled -> "deadline elapsed on socket"
  | Idle -> "connection idle past timeout"
  | Oversized n -> Printf.sprintf "frame length %d over cap" n
  | Io msg -> msg

(* A write to a peer-closed socket must surface as the typed [Closed] fault
   ([write_all] maps EPIPE), not kill the process: hedging and cancellation
   make benign peer hang-ups routine — a cancelled leg's client may close
   while the shard is still answering. Forced once, on first socket use. *)
let ignore_sigpipe =
  lazy (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ())

let listen ?(backlog = 64) addr =
  Lazy.force ignore_sigpipe;
  (match addr with
  | Unix_sock path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | Tcp _ -> ());
  let fd = Unix.socket (domain_of addr) Unix.SOCK_STREAM 0 in
  (try
     (match addr with Tcp _ -> Unix.setsockopt fd Unix.SO_REUSEADDR true | Unix_sock _ -> ());
     Unix.bind fd (sockaddr_of addr);
     Unix.listen fd backlog
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  fd

let connect addr : (Unix.file_descr, fault) result =
  Lazy.force ignore_sigpipe;
  let fd = Unix.socket (domain_of addr) Unix.SOCK_STREAM 0 in
  try
    Unix.connect fd (sockaddr_of addr);
    Ok fd
  with
  | Unix.Unix_error (err, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error (Io (Unix.error_message err))
  | e ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise e

let close_noerr fd = try Unix.close fd with Unix.Unix_error _ -> ()

let now () = Unix.gettimeofday ()

(* Wait until [fd] is ready for [dir] or [deadline] passes. *)
let wait_ready fd dir ~deadline =
  let rec go () =
    let remaining = deadline -. now () in
    if remaining <= 0.0 then false
    else
      let r, w = match dir with `Read -> ([ fd ], []) | `Write -> ([], [ fd ]) in
      match Unix.select r w [] remaining with
      | [], [], [] -> false
      | _ -> true
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

let read_exact fd buf ~deadline : (unit, fault) result =
  let len = Bytes.length buf in
  let rec go off =
    if off >= len then Ok ()
    else if not (wait_ready fd `Read ~deadline) then Error Stalled
    else
      match Unix.read fd buf off (len - off) with
      | 0 -> Error Closed
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> Error Closed
      | exception Unix.Unix_error (err, _, _) -> Error (Io (Unix.error_message err))
  in
  go 0

let write_all fd buf ~deadline : (unit, fault) result =
  let len = Bytes.length buf in
  let rec go off =
    if off >= len then Ok ()
    else if not (wait_ready fd `Write ~deadline) then Error Stalled
    else
      match Unix.write fd buf off (len - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> Error Closed
      | exception Unix.Unix_error (err, _, _) -> Error (Io (Unix.error_message err))
  in
  go 0

let encode_prefix n =
  let hdr = Bytes.create 4 in
  Bytes.set_uint8 hdr 0 (n land 0xff);
  Bytes.set_uint8 hdr 1 ((n lsr 8) land 0xff);
  Bytes.set_uint8 hdr 2 ((n lsr 16) land 0xff);
  Bytes.set_uint8 hdr 3 ((n lsr 24) land 0xff);
  hdr

let decode_prefix hdr =
  Bytes.get_uint8 hdr 0
  lor (Bytes.get_uint8 hdr 1 lsl 8)
  lor (Bytes.get_uint8 hdr 2 lsl 16)
  lor (Bytes.get_uint8 hdr 3 lsl 24)

let send_frame fd payload ~deadline : (unit, fault) result =
  let n = String.length payload in
  let msg = Bytes.create (4 + n) in
  Bytes.blit (encode_prefix n) 0 msg 0 4;
  Bytes.blit_string payload 0 msg 4 n;
  write_all fd msg ~deadline

let recv_frame ?(max_frame = default_max_frame) fd ~deadline : (string, fault) result =
  let hdr = Bytes.create 4 in
  match read_exact fd hdr ~deadline with
  | Error f -> Error f
  | Ok () ->
      let n = decode_prefix hdr in
      if n < 0 || n > max_frame then Error (Oversized n)
      else
        let body = Bytes.create n in
        (match read_exact fd body ~deadline with
        | Error Closed ->
            (* EOF after a partial frame is a truncation, not a clean close *)
            Error (Io "truncated frame")
        | Error f -> Error f
        | Ok () -> Ok (Bytes.unsafe_to_string body))

(* Receive one frame on a connection that may legitimately sit quiet between
   requests: the wait for the frame's *first byte* is bounded by
   [idle_deadline] (absolute; expiry is the benign [Idle], not [Stalled]),
   and once transmission has started the whole frame must land within
   [frame_budget_s] seconds. Separating the two clocks keeps "client is
   thinking" (tolerated for the idle timeout) distinct from "client started
   a frame and stalled" (a transport fault after which the stream boundary
   is unknowable). *)
let recv_frame_idle ?max_frame fd ~idle_deadline ~frame_budget_s : (string, fault) result =
  if not (wait_ready fd `Read ~deadline:idle_deadline) then Error Idle
  else recv_frame ?max_frame fd ~deadline:(now () +. frame_budget_s)

(* Peek the Serial tag of a received frame without parsing it — the frame
   layout leads with its 4-character tag. *)
let frame_tag payload = if String.length payload >= 4 then String.sub payload 0 4 else ""
