(* Shard supervisor: fork N workers, watch them, restart them, route around
   them (DESIGN.md §12).

   The supervisor owns no FHE state. Each worker process rebuilds its
   deployment from the durable store bundle (warm restart, DESIGN.md §11),
   which is what makes SIGKILL survivable: the supervisor's only jobs are
   (a) noticing death — waitpid for crashes, health pings for hangs —
   (b) restarting with capped exponential backoff so a crash-looping shard
   cannot monopolise the machine, and (c) keeping the front door honest
   while a shard is down: requests route to live shards through a
   per-shard circuit breaker, and when nothing is routable the client gets
   a typed [Overloaded], never a hang. With [sup_hedge_delay_s] set, a slow
   shard is raced: the request is duplicated to a second healthy shard
   after the delay, the first acceptable answer wins, and the loser is
   cancelled with a CNCL frame — shard-side request-id dedupe keeps the
   duplicate bit-identically safe (DESIGN.md §13).

   Process management is injected ([spawn] returns pid/kill/poll closures)
   so the state machine is testable in-process with fake "processes"
   (threads serving the same protocol); the real fork/exec drill runs in
   scripts/net_smoke.sh. *)

module Serial = Chet_crypto.Serial
module Herr = Chet_herr.Herr
module Breaker = Chet_serve.Breaker
module Metrics = Chet_obs.Metrics

type spawned = {
  sp_pid : int;
  sp_kill : int -> unit;  (** deliver this signal *)
  sp_poll : unit -> Unix.process_status option;  (** [None] while running *)
}

type spawn = shard:int -> addr:Wire.addr -> spawned

(* The production spawn: fork/exec this very binary as [chet shard-worker].
   [argv_for] closes over model/state-dir/tuning flags at the CLI layer. *)
let exec_spawn ~argv_for : spawn =
 fun ~shard ~addr ->
  let argv = argv_for ~shard ~addr in
  let pid = Unix.create_process Sys.executable_name argv Unix.stdin Unix.stdout Unix.stderr in
  {
    sp_pid = pid;
    sp_kill = (fun signal -> try Unix.kill pid signal with Unix.Unix_error _ -> ());
    sp_poll =
      (fun () ->
        match Unix.waitpid [ Unix.WNOHANG ] pid with
        | 0, _ -> None
        | _, status -> Some status
        | exception Unix.Unix_error (Unix.ECHILD, _, _) -> Some (Unix.WEXITED 127));
  }

type config = {
  sup_shards : int;
  sup_shard_addr : int -> Wire.addr;
  sup_front_addr : Wire.addr;  (** REQ1 proxy + HLTH control socket *)
  sup_backoff_base_ms : float;
  sup_backoff_cap_ms : float;
  sup_health_interval_s : float;  (** ping cadence; also the monitor tick *)
  sup_ping_deadline_s : float;
  sup_hang_pings : int;  (** consecutive failed pings before SIGKILL *)
  sup_forward_deadline_s : float;  (** transport budget per forwarded request *)
  sup_breaker_threshold : int;
  sup_breaker_cooldown_s : float;
  sup_hedge_delay_s : float;
      (** hedged requests (DESIGN.md §13): if the routed shard has not
          answered within this delay, duplicate the request to a second
          breaker-healthy shard — first acceptable answer wins, the loser is
          cancelled with a CNCL frame. [<= 0] disables hedging. *)
}

let default_config ~shards ~shard_addr ~front_addr =
  {
    sup_shards = shards;
    sup_shard_addr = shard_addr;
    sup_front_addr = front_addr;
    sup_backoff_base_ms = 100.0;
    sup_backoff_cap_ms = 5000.0;
    sup_health_interval_s = 0.25;
    sup_ping_deadline_s = 2.0;
    sup_hang_pings = 8;
    sup_forward_deadline_s = 30.0;
    sup_breaker_threshold = 3;
    sup_breaker_cooldown_s = 1.0;
    sup_hedge_delay_s = 0.0;
  }

type shard = {
  sh_id : int;
  sh_addr : Wire.addr;
  sh_breaker : Breaker.t;
  sh_restart_counter : Metrics.counter;
  mutable sh_proc : spawned option;
  mutable sh_up : bool;  (** process alive and last ping answered *)
  mutable sh_restarts : int;
  mutable sh_last_error : string;
  mutable sh_backoff_ms : float;
  mutable sh_restart_at : float;  (** no respawn before this instant *)
  mutable sh_ping_failures : int;
  mutable sh_suspect : bool;
      (** a forwarded answer from this shard failed sentinel verification;
          routing skips it until the health loop's [Health_selftest] probe
          either exonerates it or confirms the corruption and quarantines
          it (DESIGN.md §16) *)
}

type t = {
  cfg : config;
  spawn : spawn;
  shards : shard array;
  lock : Mutex.t;  (** guards every mutable shard field *)
  stop_flag : bool Atomic.t;
  started_at : float;
  rr : int Atomic.t;  (** round-robin routing cursor *)
  listen_fd : Unix.file_descr;
  registry : Metrics.t;
  forwarded : Metrics.counter;
  routed_errors : Metrics.counter;
  unroutable : Metrics.counter;
  hedges : Metrics.counter;
  hedge_wins : Metrics.counter;
  cancels_sent : Metrics.counter;
  integrity_failures : Metrics.counter;
  quarantines : Metrics.counter;
  mutable threads : Thread.t list;
}

let status_to_string = function
  | Unix.WEXITED 0 -> "exit 0"
  | Unix.WEXITED c -> Printf.sprintf "exit %d" c
  | Unix.WSIGNALED sg -> Printf.sprintf "killed by signal %d" sg
  | Unix.WSTOPPED sg -> Printf.sprintf "stopped by signal %d" sg

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* ---- lifecycle: spawn / death / backoff-restart ---- *)

let spawn_shard t sh ~first =
  let proc = t.spawn ~shard:sh.sh_id ~addr:sh.sh_addr in
  sh.sh_proc <- Some proc;
  sh.sh_ping_failures <- 0;
  if not first then begin
    sh.sh_restarts <- sh.sh_restarts + 1;
    Metrics.incr sh.sh_restart_counter
  end

let note_death t sh status =
  sh.sh_proc <- None;
  sh.sh_up <- false;
  (* death is the remediation: the replacement process gets a clean slate
     (a still-corrupting shard re-earns suspicion on its next bad answer) *)
  sh.sh_suspect <- false;
  sh.sh_last_error <- status_to_string status;
  sh.sh_restart_at <- Wire.now () +. (sh.sh_backoff_ms /. 1000.0);
  sh.sh_backoff_ms <- Float.min t.cfg.sup_backoff_cap_ms (sh.sh_backoff_ms *. 2.0);
  Breaker.record_failure sh.sh_breaker

(* A forwarded answer from [sh] failed sentinel verification. The failure is
   already the request's answer elsewhere (the router moved on); here the
   shard itself goes under suspicion until the health loop's selftest probe
   decides between exoneration and quarantine. *)
let mark_suspect t sh =
  Metrics.incr t.integrity_failures;
  with_lock t (fun () ->
      if not sh.sh_suspect then begin
        sh.sh_suspect <- true;
        sh.sh_last_error <- "integrity: sentinel mismatch"
      end)

let monitor_tick t =
  Array.iter
    (fun sh ->
      with_lock t (fun () ->
          match sh.sh_proc with
          | Some proc -> (
              match proc.sp_poll () with
              | Some status -> note_death t sh status
              | None -> ())
          | None -> if Wire.now () >= sh.sh_restart_at then spawn_shard t sh ~first:false))
    t.shards

let health_tick t =
  Array.iter
    (fun sh ->
      let probe =
        with_lock t (fun () -> Option.map (fun _ -> (sh.sh_addr, sh.sh_suspect)) sh.sh_proc)
      in
      match probe with
      | None -> ()
      | Some (addr, true) -> (
          (* suspect shard: ask it to run its own sentinel lane before
             deciding. A verified lane exonerates (the mismatch was a
             one-off); a failed or unanswerable probe confirms the shard
             cannot produce trustworthy answers — quarantine it. The SIGKILL
             feeds the ordinary death/backoff/restart machinery, so a shard
             that corrupts persistently decays to the capped restart cadence
             instead of flapping. *)
          match
            Client.health ~deadline_s:t.cfg.sup_ping_deadline_s addr Serial.Health_selftest
          with
          | Ok (Serial.Health_ack { ha_ok = true; _ }) ->
              with_lock t (fun () ->
                  sh.sh_suspect <- false;
                  sh.sh_last_error <- "")
          | Ok _ | Error _ ->
              Metrics.incr t.quarantines;
              with_lock t (fun () ->
                  sh.sh_last_error <- "quarantined: selftest failed";
                  match sh.sh_proc with
                  | Some proc -> proc.sp_kill Sys.sigkill
                  | None -> ()))
      | Some (addr, false) -> (
          match Client.ping ~deadline_s:t.cfg.sup_ping_deadline_s addr with
          | Ok (Serial.Health_ack { ha_ok = true; _ }) ->
              with_lock t (fun () ->
                  sh.sh_up <- true;
                  sh.sh_ping_failures <- 0;
                  (* a shard that answers pings has earned its backoff back *)
                  sh.sh_backoff_ms <- t.cfg.sup_backoff_base_ms;
                  if sh.sh_last_error <> "" then sh.sh_last_error <- "")
          | Ok _ | Error _ ->
              with_lock t (fun () ->
                  sh.sh_up <- false;
                  sh.sh_ping_failures <- sh.sh_ping_failures + 1;
                  if sh.sh_ping_failures >= t.cfg.sup_hang_pings then begin
                    (* alive but unresponsive: treat as hung, make it a crash *)
                    sh.sh_last_error <-
                      Printf.sprintf "hung (%d failed pings)" sh.sh_ping_failures;
                    match sh.sh_proc with
                    | Some proc -> proc.sp_kill Sys.sigkill
                    | None -> ()
                  end)))
    t.shards

let monitor_loop t =
  while not (Atomic.get t.stop_flag) do
    monitor_tick t;
    health_tick t;
    Thread.delay t.cfg.sup_health_interval_s
  done

(* ---- routing ---- *)

(* Next live shard whose breaker admits, round-robin from the cursor; the
   breaker slot is held by the caller (release on transport failure).
   [exclude] skips one shard id — how a hedge finds a *different* shard. *)
let route ?(exclude = -1) t : shard option =
  let n = Array.length t.shards in
  let start = Atomic.fetch_and_add t.rr 1 in
  let rec probe i =
    if i >= n then None
    else
      let sh = t.shards.((start + i) mod n) in
      if sh.sh_id = exclude then probe (i + 1)
      else
        (* a suspect shard is unroutable: until the selftest probe clears
           it, every answer it could give is presumed corrupt *)
        let candidate = with_lock t (fun () -> sh.sh_up && not sh.sh_suspect) in
        if candidate && Breaker.allow sh.sh_breaker then Some sh else probe (i + 1)
  in
  probe 0

let reject ~id err op =
  {
    Serial.rs_id = id;
    rs_shard = -1;
    rs_served_by = "";
    rs_degraded = false;
    rs_attempts = 0;
    rs_margin_bits = Float.nan;
    rs_sentinel = [||];
    rs_result = Error (err, Herr.context ~backend:"supervisor" op);
  }

let forward_once t sh (rq : Serial.wire_request) =
  let cl =
    {
      (Client.default_config sh.sh_addr) with
      Client.cl_io_deadline_s = t.cfg.sup_forward_deadline_s;
      cl_retries = 0;
      cl_seed = rq.Serial.rq_seed;
    }
  in
  (Client.request cl rq).Client.rm_response

let handle_sequential t (rq : Serial.wire_request) : Serial.wire_response =
  (* try each routable shard once; a shard that answers — even with a typed
     FHE error — ends the search (that is the system's answer), while a
     transport fault or shard-side shed moves on to the next shard *)
  let rec go tried =
    if tried >= Array.length t.shards then begin
      Metrics.incr t.unroutable;
      reject ~id:rq.Serial.rq_id
        (Herr.Overloaded { queue_depth = 0; high_water = 0 })
        "no routable shard"
    end
    else
      match route t with
      | None ->
          Metrics.incr t.unroutable;
          reject ~id:rq.Serial.rq_id
            (Herr.Overloaded { queue_depth = 0; high_water = 0 })
            "no routable shard"
      | Some sh -> (
          match forward_once t sh rq with
          | Ok rsp -> (
              match rsp.Serial.rs_result with
              | Error ((Herr.Overloaded _ | Herr.Corrupt_frame _), _) ->
                  Breaker.record_failure sh.sh_breaker;
                  Metrics.incr t.routed_errors;
                  go (tried + 1)
              | Error (Herr.Integrity_violation _, _) ->
                  (* the shard produced an answer its own sentinel lane
                     rejected: NOT the system's answer. Put the shard under
                     suspicion (the health loop confirms before
                     quarantining) and fail the request over to a shard
                     whose answers still verify. *)
                  Breaker.record_failure sh.sh_breaker;
                  mark_suspect t sh;
                  Metrics.incr t.routed_errors;
                  go (tried + 1)
              | Error (Herr.Cancelled _, _) ->
                  (* breaker-neutral: a cancelled answer says nothing about
                     the shard's health, so the (possibly half-open) slot is
                     handed back without a verdict *)
                  Breaker.release sh.sh_breaker;
                  Metrics.incr t.forwarded;
                  { rsp with Serial.rs_shard = sh.sh_id }
              | Ok _ | Error _ ->
                  Breaker.record_success sh.sh_breaker;
                  Metrics.incr t.forwarded;
                  { rsp with Serial.rs_shard = sh.sh_id })
          | Error _ ->
              (* transport fault: the shard may be mid-crash; let the
                 monitor sort it out and try the next one *)
              Breaker.record_failure sh.sh_breaker;
              with_lock t (fun () -> sh.sh_up <- false);
              Metrics.incr t.routed_errors;
              go (tried + 1))
  in
  go 0

(* ---- hedged requests (DESIGN.md §13) ---- *)

(* Rendezvous between the coordinator and its forwarding legs: each leg
   posts (shard id, raw result) under the mutex; the coordinator polls.
   No timed condvar wait exists in the stdlib, so polling at 1 ms — against
   inferences measured in tens of ms — is the repo-wide idiom. *)
type hedge_cell = {
  hc_mutex : Mutex.t;
  mutable hc_results : (int * (Serial.wire_response, Herr.error * Herr.context) result) list;
}

(* One forwarding leg. The leg owns its breaker verdict (the coordinator may
   have returned long before a losing leg resolves): answered = success,
   shard-shed/corrupt or transport fault = failure, cancelled = neutral
   (that is typically the loser we ourselves cancelled). *)
let spawn_leg t sh (rq : Serial.wire_request) cell =
  ignore
    (Thread.create
       (fun () ->
         let res = forward_once t sh rq in
         (match res with
         | Ok { Serial.rs_result = Error ((Herr.Overloaded _ | Herr.Corrupt_frame _), _); _ } ->
             Breaker.record_failure sh.sh_breaker
         | Ok { Serial.rs_result = Error (Herr.Integrity_violation _, _); _ } ->
             Breaker.record_failure sh.sh_breaker;
             mark_suspect t sh
         | Ok { Serial.rs_result = Error (Herr.Cancelled _, _); _ } ->
             Breaker.release sh.sh_breaker
         | Ok _ -> Breaker.record_success sh.sh_breaker
         | Error _ ->
             Breaker.record_failure sh.sh_breaker;
             with_lock t (fun () -> sh.sh_up <- false));
         Mutex.protect cell.hc_mutex (fun () ->
             cell.hc_results <- (sh.sh_id, res) :: cell.hc_results))
       ())

(* Fire-and-forget CNCL to the losing shard: a lost cancel costs at most the
   work it tried to save, so it gets its own thread and no retries. *)
let cancel_loser t sh ~id =
  Metrics.incr t.cancels_sent;
  ignore
    (Thread.create
       (fun () ->
         ignore
           (Client.cancel ~deadline_s:t.cfg.sup_ping_deadline_s sh.sh_addr ~id
              ~reason:"superseded"))
       ())

let handle_hedged t (rq : Serial.wire_request) : Serial.wire_response =
  match route t with
  | None ->
      Metrics.incr t.unroutable;
      reject ~id:rq.Serial.rq_id
        (Herr.Overloaded { queue_depth = 0; high_water = 0 })
        "no routable shard"
  | Some primary ->
      let cell = { hc_mutex = Mutex.create (); hc_results = [] } in
      spawn_leg t primary rq cell;
      let legs = ref [ primary ] in
      let hedge_at = Wire.now () +. t.cfg.sup_hedge_delay_s in
      (* hard stop: every leg bounds its transport at
         [sup_forward_deadline_s], so results must land by then; the slack
         covers the hedge launch offset *)
      let give_up_at =
        Wire.now () +. t.cfg.sup_hedge_delay_s +. t.cfg.sup_forward_deadline_s +. 5.0
      in
      let rec wait () =
        let results = Mutex.protect cell.hc_mutex (fun () -> cell.hc_results) in
        (* an acceptable answer: the shard actually spoke for the request —
           not a shed/corrupt failover signal, not a cancelled loser *)
        let win =
          List.find_map
            (fun (sid, res) ->
              match res with
              | Ok
                  {
                    Serial.rs_result =
                      Error
                        ( ( Herr.Overloaded _ | Herr.Corrupt_frame _ | Herr.Cancelled _
                          | Herr.Integrity_violation _ ),
                          _ );
                    _;
                  } ->
                  None
              | Ok rsp -> Some (sid, rsp)
              | Error _ -> None)
            results
        in
        match win with
        | Some (sid, rsp) ->
            Metrics.incr t.forwarded;
            if List.length !legs > 1 && sid <> primary.sh_id then Metrics.incr t.hedge_wins;
            (* first success wins: cancel every leg still in flight *)
            List.iter
              (fun sh ->
                if sh.sh_id <> sid && not (List.mem_assoc sh.sh_id results) then
                  cancel_loser t sh ~id:rq.Serial.rq_id)
              !legs;
            { rsp with Serial.rs_shard = sid }
        | None ->
            if List.length results >= List.length !legs then begin
              (* every leg resolved and none was acceptable. A cancelled
                 answer is final (the request's own token tripped); anything
                 else — shed, corrupt, transport — is a failover signal, and
                 the sequential path picks up where the race left off (safe:
                 the request was never answered, and shard-side dedupe makes
                 any re-forward idempotent). *)
              match
                List.find_map
                  (fun (sid, res) ->
                    match res with
                    | Ok ({ Serial.rs_result = Error (Herr.Cancelled _, _); _ } as rsp) ->
                        Some (sid, rsp)
                    | _ -> None)
                  results
              with
              | Some (sid, rsp) ->
                  Metrics.incr t.forwarded;
                  { rsp with Serial.rs_shard = sid }
              | None ->
                  Metrics.incr t.routed_errors;
                  handle_sequential t rq
            end
            else if Wire.now () >= give_up_at then begin
              Metrics.incr t.unroutable;
              reject ~id:rq.Serial.rq_id
                (Herr.Overloaded { queue_depth = 0; high_water = 0 })
                "hedge legs unresponsive"
            end
            else begin
              (if List.length !legs = 1 && List.length results = 0 && Wire.now () >= hedge_at
               then
                 (* primary is slow: launch the duplicate on a different
                    breaker-healthy shard, stamped with the next hedge
                    generation so shard logs can tell the twins apart *)
                 match route ~exclude:primary.sh_id t with
                 | Some second ->
                     Metrics.incr t.hedges;
                     legs := second :: !legs;
                     spawn_leg t second { rq with Serial.rq_hedge = rq.Serial.rq_hedge + 1 } cell
                 | None -> ());
              Thread.delay 0.001;
              wait ()
            end
      in
      wait ()

let handle_request t (rq : Serial.wire_request) : Serial.wire_response =
  if t.cfg.sup_hedge_delay_s > 0.0 && Array.length t.shards > 1 then handle_hedged t rq
  else handle_sequential t rq

(* ---- control plane ---- *)

let report t =
  let shards =
    Array.to_list
      (Array.map
         (fun sh ->
           with_lock t (fun () ->
               {
                 Serial.hs_shard = sh.sh_id;
                 hs_pid = (match sh.sh_proc with Some p -> p.sp_pid | None -> -1);
                 (* a suspect shard reports down: it is unroutable until the
                    selftest probe clears it, and callers of the report (the
                    CLI status view, await_ready) should see it that way *)
                 hs_up = sh.sh_up && not sh.sh_suspect;
                 hs_restarts = sh.sh_restarts;
                 hs_last_error = sh.sh_last_error;
               }))
         t.shards)
  in
  Serial.Health_report { hr_uptime_s = Wire.now () -. t.started_at; hr_shards = shards }

let handle_health t : Serial.wire_health -> Serial.wire_health = function
  | Serial.Health_ping -> Serial.Health_ack { ha_ok = true; ha_detail = "supervisor" }
  | Serial.Health_report _ -> report t
  | Serial.Health_kill id -> (
      if id < 0 || id >= Array.length t.shards then
        Serial.Health_ack { ha_ok = false; ha_detail = Printf.sprintf "no shard %d" id }
      else
        let sh = t.shards.(id) in
        match with_lock t (fun () -> sh.sh_proc) with
        | None -> Serial.Health_ack { ha_ok = false; ha_detail = "shard already down" }
        | Some proc ->
            proc.sp_kill Sys.sigkill;
            Serial.Health_ack { ha_ok = true; ha_detail = Printf.sprintf "SIGKILL shard %d" id })
  | Serial.Health_ack _ -> Serial.Health_ack { ha_ok = false; ha_detail = "unexpected ack" }
  | Serial.Health_selftest ->
      (* the probe is a shard-side operation; the supervisor has no lane *)
      Serial.Health_ack { ha_ok = false; ha_detail = "not a shard" }

(* ---- front-door socket (REQ1 proxy + HLTH control) ---- *)

let answer t payload : string option =
  let reply f =
    let w = Serial.writer () in
    f w;
    Some (Serial.contents w)
  in
  match Wire.frame_tag payload with
  | "REQ1" -> (
      match Serial.read_request (Serial.reader payload) with
      | rq -> reply (fun w -> Serial.write_response w (handle_request t rq))
      | exception Serial.Corrupt reason ->
          reply (fun w ->
              Serial.write_response w
                (reject ~id:(-1) (Herr.Corrupt_frame { frame = "REQ1"; reason }) "recv"))
      | exception Invalid_argument reason ->
          reply (fun w ->
              Serial.write_response w
                (reject ~id:(-1) (Herr.Corrupt_frame { frame = "REQ1"; reason }) "recv")))
  | "CNCL" -> (
      (* front-door cancellation: the supervisor does not track which shard
         holds a given request id (hedges mean it may be several), so the
         frame is relayed to every live shard; any hit acks true *)
      match Serial.read_cancel (Serial.reader payload) with
      | cn ->
          let hit = ref false in
          Array.iter
            (fun sh ->
              if with_lock t (fun () -> sh.sh_up) then begin
                Metrics.incr t.cancels_sent;
                match
                  Client.cancel ~deadline_s:t.cfg.sup_ping_deadline_s sh.sh_addr
                    ~id:cn.Serial.cn_id ~reason:cn.Serial.cn_reason
                with
                | Ok true -> hit := true
                | Ok false | Error _ -> ()
              end)
            t.shards;
          reply (fun w ->
              Serial.write_health w
                (Serial.Health_ack
                   { ha_ok = !hit; ha_detail = (if !hit then "cancelled" else "not in flight") }))
      | exception Serial.Corrupt reason ->
          reply (fun w ->
              Serial.write_response w
                (reject ~id:(-1) (Herr.Corrupt_frame { frame = "CNCL"; reason }) "recv")))
  | "HLTH" -> (
      match Serial.read_health (Serial.reader payload) with
      | h -> reply (fun w -> Serial.write_health w (handle_health t h))
      | exception Serial.Corrupt reason ->
          reply (fun w ->
              Serial.write_response w
                (reject ~id:(-1) (Herr.Corrupt_frame { frame = "HLTH"; reason }) "recv")))
  | tag ->
      reply (fun w ->
          Serial.write_response w
            (reject ~id:(-1)
               (Herr.Corrupt_frame
                  { frame = (if tag = "" then "????" else tag); reason = "unknown tag" })
               "recv"))

let conn_loop t fd =
  let rec loop () =
    if Atomic.get t.stop_flag then ()
    else
      match Wire.recv_frame fd ~deadline:(Wire.now () +. 30.0) with
      | Error _ -> ()
      | Ok payload -> (
          match answer t payload with
          | None -> ()
          | Some rsp -> (
              match Wire.send_frame fd rsp ~deadline:(Wire.now () +. 10.0) with
              | Ok () -> loop ()
              | Error _ -> ()))
  in
  (try loop () with _ -> ());
  Wire.close_noerr fd

(* Poll-then-accept for the same reason as Server.accept_loop: closing the
   listen fd does not wake a thread already parked in [Unix.accept]. *)
let accept_loop t =
  while not (Atomic.get t.stop_flag) do
    match Unix.select [ t.listen_fd ] [] [] 0.2 with
    | [], _, _ -> ()
    | _ -> (
        match Unix.accept t.listen_fd with
        | fd, _ -> ignore (Thread.create (conn_loop t) fd)
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        | exception Unix.Unix_error _ -> Atomic.set t.stop_flag true)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error _ -> Atomic.set t.stop_flag true
  done

(* ---- assembly ---- *)

let start ~(spawn : spawn) cfg =
  if cfg.sup_shards < 1 then invalid_arg "Supervisor.start: need at least one shard";
  let registry = Metrics.create () in
  let shards =
    Array.init cfg.sup_shards (fun i ->
        {
          sh_id = i;
          sh_addr = cfg.sup_shard_addr i;
          sh_breaker =
            Breaker.create ~threshold:cfg.sup_breaker_threshold
              ~cooldown:cfg.sup_breaker_cooldown_s ();
          sh_restart_counter =
            Metrics.counter registry ~help:"worker restarts"
              ~labels:[ ("shard", string_of_int i) ]
              "chet_sup_restarts_total";
          sh_proc = None;
          sh_up = false;
          sh_restarts = 0;
          sh_last_error = "";
          sh_backoff_ms = cfg.sup_backoff_base_ms;
          sh_restart_at = neg_infinity;
          sh_ping_failures = 0;
          sh_suspect = false;
        })
  in
  let listen_fd = Wire.listen cfg.sup_front_addr in
  let t =
    {
      cfg;
      spawn;
      shards;
      lock = Mutex.create ();
      stop_flag = Atomic.make false;
      started_at = Wire.now ();
      rr = Atomic.make 0;
      listen_fd;
      registry;
      forwarded =
        Metrics.counter registry ~help:"requests answered by a shard" "chet_sup_forwarded_total";
      routed_errors =
        Metrics.counter registry ~help:"forwards that failed over to another shard"
          "chet_sup_route_failovers_total";
      unroutable =
        Metrics.counter registry ~help:"requests rejected: no routable shard"
          "chet_sup_unroutable_total";
      hedges =
        Metrics.counter registry ~help:"duplicate requests launched after the hedge delay"
          "chet_sup_hedges_total";
      hedge_wins =
        Metrics.counter registry ~help:"hedged requests won by the duplicate leg"
          "chet_sup_hedge_wins_total";
      cancels_sent =
        Metrics.counter registry ~help:"CNCL frames sent to shards (hedge losers + relays)"
          "chet_sup_cancels_sent_total";
      integrity_failures =
        Metrics.counter registry ~help:"shard answers rejected by sentinel verification"
          "chet_integrity_failures_total";
      quarantines =
        Metrics.counter registry ~help:"shards killed after a failed integrity selftest"
          "chet_shard_quarantines_total";
      threads = [];
    }
  in
  Array.iter (fun sh -> with_lock t (fun () -> spawn_shard t sh ~first:true)) t.shards;
  t.threads <- [ Thread.create monitor_loop t; Thread.create accept_loop t ];
  t

(* Block until at least [n] shards answer pings, or [timeout_s] elapses. *)
let await_ready t ?(n = Array.length t.shards) ~timeout_s () =
  let deadline = Wire.now () +. timeout_s in
  let rec poll () =
    let up = with_lock t (fun () -> Array.fold_left (fun a sh -> if sh.sh_up then a + 1 else a) 0 t.shards) in
    if up >= n then true
    else if Wire.now () >= deadline then false
    else begin
      Thread.delay 0.05;
      poll ()
    end
  in
  poll ()

let metrics_snapshot t = Metrics.expose t.registry

let stop ?(kill_workers = true) t =
  Atomic.set t.stop_flag true;
  Wire.close_noerr t.listen_fd;
  List.iter Thread.join t.threads;
  if kill_workers then
    Array.iter
      (fun sh ->
        match with_lock t (fun () -> sh.sh_proc) with
        | Some proc ->
            proc.sp_kill Sys.sigterm;
            (* give a graceful drain a moment, then insist *)
            let deadline = Wire.now () +. 5.0 in
            let rec reap () =
              match proc.sp_poll () with
              | Some _ -> ()
              | None ->
                  if Wire.now () >= deadline then begin
                    proc.sp_kill Sys.sigkill;
                    ignore (proc.sp_poll ())
                  end
                  else begin
                    Thread.delay 0.05;
                    reap ()
                  end
            in
            reap ()
        | None -> ())
      t.shards
