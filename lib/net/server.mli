(** Shard server: the socket front of one [Chet_serve.Service] (DESIGN.md §12).

    Thread-per-connection over blocking sockets: an accept thread hands each
    connection to a systhread that loops recv REQ1 → submit → await → send
    RSP1. Beyond REQ1, a connection may carry CNCL control frames (trip the
    cancel token of an in-flight request by id) and HLTH health frames;
    duplicate REQ1 ids are answered bit-identically from a bounded dedupe
    cache (DESIGN.md §13), so client retries and supervisor hedges are
    idempotent.

    Rejections are {e answers}, not dropped connections: over-capacity and
    draining yield typed [Overloaded] RSP1s, checksum/schema failures yield
    typed [Corrupt_frame] RSP1s. Only transport faults close the connection,
    because after those the byte stream has no trustworthy boundary. *)

type config = {
  srv_addr : Wire.addr;
  srv_shard : int;  (** stamped into every RSP1 this server answers *)
  srv_max_frame : int;
  srv_max_inflight : int;  (** concurrent requests admitted past the socket *)
  srv_read_deadline_s : float;
      (** per-frame receive budget: once a frame's first byte has arrived,
          the rest must land within this — a violation is a transport fault
          (the stream boundary is lost) answered with a typed goodbye *)
  srv_idle_timeout_s : float;
      (** how long a connection may sit quiet {e between} frames before the
          server closes it — a benign hang-up, not a fault *)
  srv_write_deadline_s : float;
  srv_dedup_cap : int;
      (** entries in the request-id dedupe cache; [0] disables caching *)
}

val default_config : ?shard:int -> Wire.addr -> config

type stats = {
  srv_accepted : int;  (** connections accepted *)
  srv_served : int;  (** RSP1 answers carrying [Ok] *)
  srv_rejected : int;  (** RSP1 answers carrying a typed error *)
  srv_corrupt : int;  (** of those, [Corrupt_frame] rejections *)
  srv_dedup_hits : int;  (** REQ1s answered bit-identically from the dedupe cache *)
  srv_cancelled : int;  (** CNCL frames that found their request in flight *)
}

type t

val default_health : Chet_crypto.Serial.wire_health -> Chet_crypto.Serial.wire_health
(** Answers pings; declines supervisor-only frames with [ha_ok = false]. *)

val start :
  ?health:(Chet_crypto.Serial.wire_health -> Chet_crypto.Serial.wire_health) ->
  ?selftest:(unit -> (float, string) result) ->
  config ->
  Chet_serve.Service.t ->
  t
(** Bind, listen, and serve until {!stop}. [health] answers HLTH frames
    other than selftest. [selftest] is the sentinel-only probe inference of
    DESIGN.md §16 — [Ok margin_bits] when the shard's own lane verifies,
    [Error detail] when it does not; it answers [Health_selftest] frames
    {e before} the pluggable [health] hook, because only the shard can run
    its own sentinel lane. When absent, selftest probes are answered
    [ha_ok = false] ("no sentinel deployment") — the supervisor treats that
    as non-exonerating. *)

val stats : t -> stats

val stop : t -> unit
(** Stop accepting, close the listen socket and every tracked connection,
    and join the accept thread. Idempotent in effect. *)
