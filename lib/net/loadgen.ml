(* Fault-injecting load generator for the networked serving stack.

   Drives [total] REQ1 requests at [concurrency] from client threads against
   one address (a shard directly, or the supervisor front door), optionally
   mangling every [fault_every]-th request on the wire (rotating truncate /
   bit-flip / stall) and optionally asking the supervisor to SIGKILL a shard
   mid-run — the full chaos drill of DESIGN.md §12's failure matrix. The
   assertion the numbers back up: every request gets an answer (an [Ok]
   tensor or a typed error), zero hangs, and the percentile spread shows
   what the retries cost.

   Deterministic apart from scheduling: request images, seeds and fault
   choices all derive from [lg_seed]; latencies are wall-clock. *)

module Serial = Chet_crypto.Serial
module Herr = Chet_herr.Herr
module Service = Chet_serve.Service
module Jsonx = Chet_obs.Jsonx

type config = {
  lg_addr : Wire.addr;
  lg_total : int;
  lg_concurrency : int;
  lg_shape : int array;  (** request tensor shape, e.g. the model's input *)
  lg_deadline_ms : float;
  lg_seed : int;
  lg_retries : int;
  lg_io_deadline_s : float;
  lg_fault_every : int;  (** mangle every k-th request; 0 disables *)
  lg_stall_s : float;  (** stall duration when that fault rotates in *)
  lg_kill_at : (Wire.addr * int * int) option;
      (** [(control, after, shard)]: once [after] requests have completed,
          ask [control] to SIGKILL [shard] — the mid-run crash of the drill *)
  lg_verify : (float array -> bool) option;
      (** client-side sentinel re-verification (DESIGN.md §16): applied to
          each ok answer's [rs_sentinel] lane, independent of the shard's own
          claim. When set, an ok answer with no lane at all also counts as
          rejected — the caller demanded verified answers. [None] trusts the
          wire. *)
}

let default_config ~addr ~shape =
  {
    lg_addr = addr;
    lg_total = 50;
    lg_concurrency = 4;
    lg_shape = shape;
    lg_deadline_ms = 30_000.0;
    lg_seed = 42;
    lg_retries = 5;
    lg_io_deadline_s = 30.0;
    lg_fault_every = 0;
    lg_stall_s = 0.05;
    lg_kill_at = None;
    lg_verify = None;
  }

type results = {
  r_total : int;
  r_ok : int;
  r_degraded : int;  (** of the ok answers, served by a degraded rung *)
  r_errors : (string * int) list;  (** typed error name -> count *)
  r_faults_injected : int;
  r_wire_attempts : int;  (** total attempts including retries *)
  r_latencies_ms : float array;  (** one entry per request, answered or not *)
  r_wall_s : float;
  r_kills_sent : int;
  r_verified : int;  (** ok answers that arrived with a sentinel lane *)
  r_client_rejected : int;
      (** ok answers whose lane failed the independent client-side
          re-verification ([lg_verify]) — each one is a corruption the
          server-side guard missed; the chaos drill requires zero *)
  r_integrity_errors : int;
      (** answers rejected as typed [Integrity_violation] — corruptions the
          serving side itself caught (also present in [r_errors] by name) *)
  r_min_margin_bits : float;  (** worst verified margin seen; [nan] if none *)
}

let lcg s = ((s * 1103515245) + 12345) land 0x3FFFFFFF

let image_for cfg i =
  let numel = Array.fold_left ( * ) 1 cfg.lg_shape in
  let data = Array.make numel 0.0 in
  let s = ref (lcg (cfg.lg_seed + (i * 7919))) in
  for k = 0 to numel - 1 do
    s := lcg !s;
    data.(k) <- (float_of_int (!s mod 2000) /. 1000.0) -. 1.0
  done;
  data

let fault_for cfg i =
  if cfg.lg_fault_every <= 0 || i = 0 || i mod cfg.lg_fault_every <> 0 then None
  else
    match i / cfg.lg_fault_every mod 3 with
    | 0 -> Some Client.Truncate
    | 1 -> Some (Client.Bitflip i)
    | _ -> Some (Client.Stall cfg.lg_stall_s)

let run cfg : results =
  if cfg.lg_total < 1 then invalid_arg "Loadgen.run: lg_total must be >= 1";
  if cfg.lg_concurrency < 1 then invalid_arg "Loadgen.run: lg_concurrency must be >= 1";
  let next = Atomic.make 0 in
  let completions = Atomic.make 0 in
  let kills_sent = Atomic.make 0 in
  let lock = Mutex.create () in
  let ok = ref 0 in
  let degraded = ref 0 in
  let errors : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let faults = ref 0 in
  let attempts = ref 0 in
  let verified = ref 0 in
  let client_rejected = ref 0 in
  let integrity_errors = ref 0 in
  let min_margin = ref Float.nan in
  let latencies = Array.make cfg.lg_total 0.0 in
  let record f = Mutex.protect lock f in
  let client_cfg =
    {
      (Client.default_config cfg.lg_addr) with
      Client.cl_retries = cfg.lg_retries;
      cl_io_deadline_s = cfg.lg_io_deadline_s;
      cl_seed = cfg.lg_seed;
    }
  in
  let maybe_kill () =
    match cfg.lg_kill_at with
    | Some (control, after, shard) when Atomic.get completions >= after ->
        if Atomic.compare_and_set kills_sent 0 1 then
          ignore (Client.health control (Serial.Health_kill shard))
    | _ -> ()
  in
  let worker () =
    let rec pull () =
      let i = Atomic.fetch_and_add next 1 in
      if i < cfg.lg_total then begin
        let fault = fault_for cfg i in
        let req =
          {
            Serial.rq_id = i;
            rq_seed = cfg.lg_seed + i;
            rq_hedge = 0;
            rq_deadline_ms = cfg.lg_deadline_ms;
            rq_shape = cfg.lg_shape;
            rq_image = image_for cfg i;
          }
        in
        let t0 = Wire.now () in
        let meta = Client.request ?fault client_cfg req in
        let dt_ms = (Wire.now () -. t0) *. 1000.0 in
        record (fun () ->
            latencies.(i) <- dt_ms;
            attempts := !attempts + meta.Client.rm_attempts;
            if fault <> None then incr faults;
            match meta.Client.rm_response with
            | Ok { Serial.rs_result = Ok _; rs_degraded; rs_margin_bits; rs_sentinel; _ } ->
                incr ok;
                if rs_degraded then incr degraded;
                if rs_sentinel <> [||] then begin
                  incr verified;
                  if Float.is_nan !min_margin || rs_margin_bits < !min_margin then
                    min_margin := rs_margin_bits
                end;
                (match cfg.lg_verify with
                | Some check -> if rs_sentinel = [||] || not (check rs_sentinel) then incr client_rejected
                | None -> ())
            | Ok { Serial.rs_result = Error (err, _); _ } | Error (err, _) ->
                (match err with Herr.Integrity_violation _ -> incr integrity_errors | _ -> ());
                let name = Herr.error_name err in
                Hashtbl.replace errors name (1 + Option.value ~default:0 (Hashtbl.find_opt errors name)));
        Atomic.incr completions;
        maybe_kill ();
        pull ()
      end
    in
    pull ()
  in
  let t0 = Wire.now () in
  let threads = List.init cfg.lg_concurrency (fun _ -> Thread.create worker ()) in
  List.iter Thread.join threads;
  let wall = Wire.now () -. t0 in
  {
    r_total = cfg.lg_total;
    r_ok = !ok;
    r_degraded = !degraded;
    r_errors = List.sort compare (Hashtbl.fold (fun k v a -> (k, v) :: a) errors []);
    r_faults_injected = !faults;
    r_wire_attempts = !attempts;
    r_latencies_ms = latencies;
    r_wall_s = wall;
    r_kills_sent = Atomic.get kills_sent;
    r_verified = !verified;
    r_client_rejected = !client_rejected;
    r_integrity_errors = !integrity_errors;
    r_min_margin_bits = !min_margin;
  }

let percentile = Service.percentile

let to_json r : Jsonx.t =
  Jsonx.Obj
    [
      ("requests", Jsonx.Num (float_of_int r.r_total));
      ("ok", Jsonx.Num (float_of_int r.r_ok));
      ("degraded", Jsonx.Num (float_of_int r.r_degraded));
      ( "errors",
        Jsonx.Obj (List.map (fun (k, v) -> (k, Jsonx.Num (float_of_int v))) r.r_errors) );
      ("faults_injected", Jsonx.Num (float_of_int r.r_faults_injected));
      ("wire_attempts", Jsonx.Num (float_of_int r.r_wire_attempts));
      ("kills_sent", Jsonx.Num (float_of_int r.r_kills_sent));
      ("verified", Jsonx.Num (float_of_int r.r_verified));
      ("client_rejected", Jsonx.Num (float_of_int r.r_client_rejected));
      ("integrity_errors", Jsonx.Num (float_of_int r.r_integrity_errors));
      ( "min_margin_bits",
        if Float.is_nan r.r_min_margin_bits then Jsonx.Null else Jsonx.Num r.r_min_margin_bits );
      ("wall_s", Jsonx.Num r.r_wall_s);
      ("requests_per_s", Jsonx.Num (float_of_int r.r_total /. Float.max 1e-9 r.r_wall_s));
      ("p50_ms", Jsonx.Num (percentile r.r_latencies_ms 50.0));
      ("p95_ms", Jsonx.Num (percentile r.r_latencies_ms 95.0));
      ("p99_ms", Jsonx.Num (percentile r.r_latencies_ms 99.0));
    ]

(* Merge under ["loadgen"] in BENCH.json (created if absent) — the bench
   harness owns the other top-level keys; this must not clobber them. *)
let write_bench ~path r =
  let existing =
    if Sys.file_exists path then
      match Jsonx.of_file path with Jsonx.Obj kvs -> kvs | _ -> [] | exception _ -> []
    else []
  in
  let kvs = List.remove_assoc "loadgen" existing @ [ ("loadgen", to_json r) ] in
  Jsonx.to_file path (Jsonx.Obj kvs)

let pp fmt r =
  Format.fprintf fmt "loadgen: %d requests, %d ok (%d degraded), %d faults injected, %d attempts@."
    r.r_total r.r_ok r.r_degraded r.r_faults_injected r.r_wire_attempts;
  if r.r_verified > 0 || r.r_integrity_errors > 0 || r.r_client_rejected > 0 then
    Format.fprintf fmt
      "  integrity: %d verified, %d client-rejected, %d typed violations, min margin %.2f bits@."
      r.r_verified r.r_client_rejected r.r_integrity_errors r.r_min_margin_bits;
  List.iter (fun (k, v) -> Format.fprintf fmt "  error %-20s %d@." k v) r.r_errors;
  Format.fprintf fmt "  wall %.2fs  %.1f req/s  p50 %.1fms  p95 %.1fms  p99 %.1fms@." r.r_wall_s
    (float_of_int r.r_total /. Float.max 1e-9 r.r_wall_s)
    (percentile r.r_latencies_ms 50.0) (percentile r.r_latencies_ms 95.0)
    (percentile r.r_latencies_ms 99.0)
