(* Client side of the REQ1/RSP1 protocol: connect, send, await, retry.

   Retries follow the serving layer's own taxonomy split (Service.transient_error):
   a typed [Overloaded] or [Corrupt_frame] answer, or a transport fault, is
   retried on a fresh connection with capped exponential backoff + seeded
   jitter; any other typed error is the server's final word and is returned
   as-is. Every reconnect is deliberate — after a transport fault the old
   stream cannot be trusted, and the supervisor may have routed the address
   to a freshly restarted shard in the meantime.

   The same module carries the load generator's wire-fault injection: a
   [fault] mangles the *bytes of one attempt* (truncate, bit-flip, stall)
   so tests can assert the server answers every mangling with a typed
   rejection instead of a hang — the client then proves liveness by
   retrying clean. *)

module Serial = Chet_crypto.Serial
module Herr = Chet_herr.Herr

type fault =
  | Truncate  (** send only a prefix of the frame, then close *)
  | Bitflip of int  (** flip one bit, position seeded by the int *)
  | Stall of float  (** sleep this long mid-frame before finishing the send *)

type config = {
  cl_addr : Wire.addr;
  cl_max_frame : int;
  cl_io_deadline_s : float;  (** per-attempt transport budget (connect+send+recv) *)
  cl_retries : int;  (** attempts beyond the first *)
  cl_backoff_base_ms : float;
  cl_backoff_cap_ms : float;
  cl_seed : int;  (** jitter determinism *)
}

let default_config addr =
  {
    cl_addr = addr;
    cl_max_frame = Wire.default_max_frame;
    cl_io_deadline_s = 30.0;
    cl_retries = 3;
    cl_backoff_base_ms = 5.0;
    cl_backoff_cap_ms = 200.0;
    cl_seed = 0;
  }

let transport_error reason =
  (Herr.Corrupt_frame { frame = "RSP1"; reason }, Herr.context ~backend:"net" "transport")

(* Same LCG the serve tests use; good enough for jitter and flip positions. *)
let lcg state = ((state * 1103515245) + 12345) land 0x3FFFFFFF

let mangle ~seed fault payload =
  match fault with
  | Truncate ->
      let n = String.length payload in
      `Truncated (String.sub payload 0 (max 1 (n / 2)))
  | Bitflip salt ->
      let n = String.length payload in
      let pos = lcg (seed + salt) mod (max 1 n) in
      let bit = lcg (seed + salt + 1) mod 8 in
      let b = Bytes.of_string payload in
      Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor (1 lsl bit)));
      `Whole (Bytes.to_string b)
  | Stall delay -> `Stalled (delay, payload)

(* One attempt: fresh connect, (possibly mangled) send, recv, parse. *)
let attempt cfg ?fault payload : (Serial.wire_response, Herr.error * Herr.context) result =
  let deadline = Wire.now () +. cfg.cl_io_deadline_s in
  match Wire.connect cfg.cl_addr with
  | Error f -> Error (transport_error (Wire.fault_name f))
  | Ok fd ->
      Fun.protect
        ~finally:(fun () -> Wire.close_noerr fd)
        (fun () ->
          let sent =
            match fault with
            | None -> Wire.send_frame fd payload ~deadline
            | Some f -> (
                match mangle ~seed:cfg.cl_seed f payload with
                | `Whole bytes -> Wire.send_frame fd bytes ~deadline
                | `Truncated prefix ->
                    (* honest length prefix, dishonest body: the server must
                       detect the EOF mid-frame, not wait forever *)
                    let hdr = Bytes.to_string (Wire.encode_prefix (String.length payload)) in
                    (match Wire.write_all fd (Bytes.of_string (hdr ^ prefix)) ~deadline with
                    | Ok () ->
                        (try Unix.shutdown fd Unix.SHUTDOWN_SEND with Unix.Unix_error _ -> ());
                        Ok ()
                    | Error f -> Error f)
                | `Stalled (delay, bytes) -> (
                    let n = String.length bytes in
                    let hdr = Bytes.to_string (Wire.encode_prefix n) in
                    let half = max 1 (n / 2) in
                    match
                      Wire.write_all fd (Bytes.of_string (hdr ^ String.sub bytes 0 half)) ~deadline
                    with
                    | Ok () ->
                        Thread.delay delay;
                        Wire.write_all fd
                          (Bytes.of_string (String.sub bytes half (n - half)))
                          ~deadline
                    | Error f -> Error f))
          in
          match sent with
          | Error f -> Error (transport_error (Wire.fault_name f))
          | Ok () -> (
              match Wire.recv_frame ~max_frame:cfg.cl_max_frame fd ~deadline with
              | Error f -> Error (transport_error (Wire.fault_name f))
              | Ok reply -> (
                  match Serial.read_response (Serial.reader reply) with
                  | rsp -> Ok rsp
                  | exception Serial.Corrupt reason -> Error (transport_error reason))))

let retryable = function
  | Herr.Overloaded _ | Herr.Corrupt_frame _ | Herr.Deadline_exceeded _ -> true
  (* a sentinel mismatch is deterministic on a corrupting shard but the
     front door routes round-robin, so the retry lands elsewhere — exactly
     the client-side failover DESIGN.md §16 prescribes *)
  | Herr.Integrity_violation _ -> true
  | _ -> false

type result_meta = {
  rm_response : (Serial.wire_response, Herr.error * Herr.context) result;
  rm_attempts : int;  (** wire attempts, including the final one *)
}

(* [request cfg req] retries transient failures; [fault] mangles only the
   first attempt, so a faulted request that eventually succeeds proves the
   recovery path end to end. *)
let request ?fault cfg (req : Serial.wire_request) : result_meta =
  let w = Serial.writer () in
  Serial.write_request w req;
  let payload = Serial.contents w in
  let rec go n jitter_state =
    let this_fault = if n = 0 then fault else None in
    let res = attempt cfg ?fault:this_fault payload in
    let failed_transiently =
      match res with
      | Ok { Serial.rs_result = Error (err, _); _ } | Error (err, _) -> retryable err
      | Ok _ -> false
    in
    if (not failed_transiently) || n >= cfg.cl_retries then { rm_response = res; rm_attempts = n + 1 }
    else begin
      let backoff =
        Float.min cfg.cl_backoff_cap_ms (cfg.cl_backoff_base_ms *. (2.0 ** float_of_int n))
      in
      let jitter_state = lcg jitter_state in
      let jitter = float_of_int (jitter_state mod 1024) /. 1024.0 in
      Thread.delay ((backoff *. (0.5 +. (0.5 *. jitter))) /. 1000.0);
      go (n + 1) jitter_state
    end
  in
  go 0 (lcg (cfg.cl_seed + req.Serial.rq_id))

let health ?(deadline_s = 5.0) addr (msg : Serial.wire_health) :
    (Serial.wire_health, string) result =
  match Wire.connect addr with
  | Error f -> Error (Wire.fault_name f)
  | Ok fd ->
      Fun.protect
        ~finally:(fun () -> Wire.close_noerr fd)
        (fun () ->
          let deadline = Wire.now () +. deadline_s in
          let w = Serial.writer () in
          Serial.write_health w msg;
          match Wire.send_frame fd (Serial.contents w) ~deadline with
          | Error f -> Error (Wire.fault_name f)
          | Ok () -> (
              match Wire.recv_frame fd ~deadline with
              | Error f -> Error (Wire.fault_name f)
              | Ok reply -> (
                  match Serial.read_health (Serial.reader reply) with
                  | h -> Ok h
                  | exception Serial.Corrupt reason -> Error reason)))

let ping ?deadline_s addr = health ?deadline_s addr Serial.Health_ping

(* Send a CNCL control frame: trip the cancel token of the in-flight request
   carrying [id] on the peer. [Ok found] says whether the peer had it in
   flight — [Ok false] is the common benign race (the request already
   finished, or never reached that shard). Never retried: cancellation is
   advisory, and a lost cancel costs at most the work it tried to save. *)
let cancel ?(deadline_s = 5.0) addr ~id ~reason : (bool, string) result =
  match Wire.connect addr with
  | Error f -> Error (Wire.fault_name f)
  | Ok fd ->
      Fun.protect
        ~finally:(fun () -> Wire.close_noerr fd)
        (fun () ->
          let deadline = Wire.now () +. deadline_s in
          let w = Serial.writer () in
          Serial.write_cancel w { Serial.cn_id = id; cn_reason = reason };
          match Wire.send_frame fd (Serial.contents w) ~deadline with
          | Error f -> Error (Wire.fault_name f)
          | Ok () -> (
              match Wire.recv_frame fd ~deadline with
              | Error f -> Error (Wire.fault_name f)
              | Ok reply -> (
                  match Serial.read_health (Serial.reader reply) with
                  | Serial.Health_ack { ha_ok; _ } -> Ok ha_ok
                  | _ -> Error "unexpected CNCL acknowledgement"
                  | exception Serial.Corrupt reason -> Error reason)))
