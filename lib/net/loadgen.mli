(** Fault-injecting load generator for the networked serving stack.

    Drives [lg_total] REQ1 requests at [lg_concurrency] from client threads
    against one address (a shard directly, or the supervisor front door),
    optionally mangling every k-th request on the wire and optionally asking
    the supervisor to SIGKILL a shard mid-run — the chaos drill of
    DESIGN.md §12's failure matrix. The assertion the numbers back up:
    every request gets an answer (an [Ok] tensor or a typed error), zero
    hangs, and the percentile spread shows what the retries cost.

    With [lg_verify] set, the drill extends to result integrity
    (DESIGN.md §16): every ok answer's sentinel lane is re-verified
    client-side, independent of the shard's own claim.

    Deterministic apart from scheduling: request images, seeds and fault
    choices all derive from [lg_seed]; latencies are wall-clock. *)

type config = {
  lg_addr : Wire.addr;
  lg_total : int;
  lg_concurrency : int;
  lg_shape : int array;  (** request tensor shape, e.g. the model's input *)
  lg_deadline_ms : float;
  lg_seed : int;
  lg_retries : int;
  lg_io_deadline_s : float;
  lg_fault_every : int;  (** mangle every k-th request; 0 disables *)
  lg_stall_s : float;  (** stall duration when that fault rotates in *)
  lg_kill_at : (Wire.addr * int * int) option;
      (** [(control, after, shard)]: once [after] requests have completed,
          ask [control] to SIGKILL [shard] — the mid-run crash of the drill *)
  lg_verify : (float array -> bool) option;
      (** client-side sentinel re-verification (DESIGN.md §16): applied to
          each ok answer's [rs_sentinel] lane, independent of the shard's own
          claim. When set, an ok answer with no lane at all also counts as
          rejected — the caller demanded verified answers. [None] trusts the
          wire. *)
}

val default_config : addr:Wire.addr -> shape:int array -> config

type results = {
  r_total : int;
  r_ok : int;
  r_degraded : int;  (** of the ok answers, served by a degraded rung *)
  r_errors : (string * int) list;  (** typed error name -> count *)
  r_faults_injected : int;
  r_wire_attempts : int;  (** total attempts including retries *)
  r_latencies_ms : float array;  (** one entry per request, answered or not *)
  r_wall_s : float;
  r_kills_sent : int;
  r_verified : int;  (** ok answers that arrived with a sentinel lane *)
  r_client_rejected : int;
      (** ok answers whose lane failed the independent client-side
          re-verification ([lg_verify]) — each one is a corruption the
          server-side guard missed; the chaos drill requires zero *)
  r_integrity_errors : int;
      (** answers rejected as typed [Integrity_violation] — corruptions the
          serving side itself caught (also present in [r_errors] by name) *)
  r_min_margin_bits : float;  (** worst verified margin seen; [nan] if none *)
}

val run : config -> results
(** Run the drill to completion.
    @raise Invalid_argument on a non-positive total or concurrency. *)

val percentile : float array -> float -> float

val to_json : results -> Chet_obs.Jsonx.t

val write_bench : path:string -> results -> unit
(** Merge {!to_json} under the ["loadgen"] key of an existing (or new)
    BENCH.json without clobbering the bench harness's other keys. *)

val pp : Format.formatter -> results -> unit
