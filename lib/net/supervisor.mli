(** Shard supervisor: fork N workers, watch them, restart them, route around
    them (DESIGN.md §12).

    The supervisor owns no FHE state. Each worker process rebuilds its
    deployment from the durable store bundle (warm restart, DESIGN.md §11),
    which is what makes SIGKILL survivable: the supervisor notices death
    (waitpid for crashes, health pings for hangs), restarts with capped
    exponential backoff, and keeps the front door honest while a shard is
    down — requests route to live shards through per-shard circuit
    breakers, hedged duplicates race a slow shard when configured
    (DESIGN.md §13), and when nothing is routable the client gets a typed
    [Overloaded], never a hang.

    Result integrity (DESIGN.md §16): a forwarded answer rejected by the
    shard's own sentinel lane is never the system's answer — the request
    fails over to another shard, and the offender goes under suspicion.
    Suspect shards are unroutable; the health loop sends them a
    [Health_selftest] probe, and a shard whose probe does not verify is
    quarantined (SIGKILL into the ordinary backoff-restart machinery, so a
    persistent corrupter decays to the capped restart cadence instead of
    flapping). Counted by [chet_integrity_failures_total] and
    [chet_shard_quarantines_total]. *)

(** Handle on one spawned worker process (or a fake in tests). *)
type spawned = {
  sp_pid : int;
  sp_kill : int -> unit;  (** deliver this signal *)
  sp_poll : unit -> Unix.process_status option;  (** [None] while running *)
}

type spawn = shard:int -> addr:Wire.addr -> spawned

val exec_spawn : argv_for:(shard:int -> addr:Wire.addr -> string array) -> spawn
(** The production spawn: fork/exec this very binary as [chet shard-worker].
    [argv_for] closes over model/state-dir/tuning flags at the CLI layer. *)

type config = {
  sup_shards : int;
  sup_shard_addr : int -> Wire.addr;
  sup_front_addr : Wire.addr;  (** REQ1 proxy + HLTH control socket *)
  sup_backoff_base_ms : float;
  sup_backoff_cap_ms : float;
  sup_health_interval_s : float;  (** ping cadence; also the monitor tick *)
  sup_ping_deadline_s : float;
  sup_hang_pings : int;  (** consecutive failed pings before SIGKILL *)
  sup_forward_deadline_s : float;  (** transport budget per forwarded request *)
  sup_breaker_threshold : int;
  sup_breaker_cooldown_s : float;
  sup_hedge_delay_s : float;
      (** hedged requests (DESIGN.md §13): if the routed shard has not
          answered within this delay, duplicate the request to a second
          breaker-healthy shard — first acceptable answer wins, the loser is
          cancelled with a CNCL frame. [<= 0] disables hedging. *)
}

val default_config :
  shards:int -> shard_addr:(int -> Wire.addr) -> front_addr:Wire.addr -> config

type t

val start : spawn:spawn -> config -> t
(** Spawn every shard, open the front door, and start the monitor and
    accept threads.
    @raise Invalid_argument when [sup_shards < 1]. *)

val await_ready : t -> ?n:int -> timeout_s:float -> unit -> bool
(** Block until at least [n] shards (default: all) answer pings, or
    [timeout_s] elapses. *)

val metrics_snapshot : t -> string
(** Prometheus-style exposition of the supervisor's counters, including
    [chet_integrity_failures_total] and [chet_shard_quarantines_total]. *)

val stop : ?kill_workers:bool -> t -> unit
(** Stop routing and monitoring; with [kill_workers] (default) SIGTERM each
    worker, giving a graceful drain a moment before insisting with
    SIGKILL. *)
