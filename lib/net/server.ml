(* Shard server: the socket front of one Chet_serve.Service (DESIGN.md §12).

   Thread-per-connection over blocking sockets: an accept thread hands each
   connection to a systhread that loops { recv REQ1 -> submit -> await ->
   send RSP1 }. The service's domain pool does the homomorphic work; the
   connection threads only shuttle frames, so plain threads (which interleave
   on one domain) are the right tool.

   Beyond REQ1, a connection may carry CNCL control frames (trip the cancel
   token of an in-flight request by id) — and duplicate REQ1 ids are
   answered bit-identically from a bounded dedupe cache (DESIGN.md §13), so
   client retries and supervisor hedges are idempotent.

   Rejections are *answers*, not dropped connections:
   - over [max_inflight] admitted-but-unanswered requests, or a service
     draining/shedding -> typed [Overloaded] RSP1;
   - a frame that fails its checksum or schema -> typed [Corrupt_frame] RSP1
     (the outer length prefix kept the stream in sync, so the connection
     lives on);
   - only transport faults — peer gone, a read stalled past the connection
     deadline, an oversized length prefix — close the connection, because
     after those the byte stream has no trustworthy boundary. *)

module Serial = Chet_crypto.Serial
module Herr = Chet_herr.Herr
module Service = Chet_serve.Service
module Tensor = Chet_tensor.Tensor

type config = {
  srv_addr : Wire.addr;
  srv_shard : int;  (** stamped into every RSP1 this server answers *)
  srv_max_frame : int;
  srv_max_inflight : int;  (** concurrent requests admitted past the socket *)
  srv_read_deadline_s : float;
      (** per-frame receive budget: once a frame's first byte has arrived,
          the rest must land within this — a violation is a transport fault
          (the stream boundary is lost) answered with a typed goodbye *)
  srv_idle_timeout_s : float;
      (** how long a connection may sit quiet *between* frames before the
          server closes it — a benign hang-up, not a fault. Distinct from
          [srv_read_deadline_s]: conflating the two forces the frame budget
          up to whatever client think-time must be tolerated *)
  srv_write_deadline_s : float;
  srv_dedup_cap : int;
      (** entries in the request-id dedupe cache; [0] disables caching *)
}

let default_config ?(shard = 0) addr =
  {
    srv_addr = addr;
    srv_shard = shard;
    srv_max_frame = Wire.default_max_frame;
    srv_max_inflight = 64;
    srv_read_deadline_s = 30.0;
    srv_idle_timeout_s = 120.0;
    srv_write_deadline_s = 10.0;
    srv_dedup_cap = 256;
  }

type stats = {
  srv_accepted : int;  (** connections accepted *)
  srv_served : int;  (** RSP1 answers carrying [Ok] *)
  srv_rejected : int;  (** RSP1 answers carrying a typed error *)
  srv_corrupt : int;  (** of those, [Corrupt_frame] rejections *)
  srv_dedup_hits : int;  (** REQ1s answered bit-identically from the dedupe cache *)
  srv_cancelled : int;  (** CNCL frames that found their request in flight *)
}

(* ------------------------------------------------------------------ *)
(* Request-id dedupe cache (DESIGN.md §13)                              *)
(* ------------------------------------------------------------------ *)

(* Bounded LRU keyed by the client-assigned [rq_id], holding the exact RSP1
   bytes of a *successful* answer. A retry or hedge duplicate of an
   already-served request is answered from here — bit-identical, no second
   execution. Failures are never cached (the retry deserves a fresh
   attempt), and neither is the parse-failure id [-1].

   LRU via lazy eviction: every access stamps the id and enqueues
   (id, stamp); eviction pops until it finds a node whose stamp is still
   current. Stale nodes cost O(1) each and are bounded by the number of
   accesses, not entries. *)
type dedup = {
  dd_cap : int;
  dd_mutex : Mutex.t;
  dd_entries : (int, string) Hashtbl.t;
  dd_stamps : (int, int) Hashtbl.t;
  dd_order : (int * int) Queue.t;
  mutable dd_clock : int;
}

let dedup_create cap =
  {
    dd_cap = cap;
    dd_mutex = Mutex.create ();
    dd_entries = Hashtbl.create (Stdlib.max 16 cap);
    dd_stamps = Hashtbl.create (Stdlib.max 16 cap);
    dd_order = Queue.create ();
    dd_clock = 0;
  }

let dedup_touch dd id =
  dd.dd_clock <- dd.dd_clock + 1;
  Hashtbl.replace dd.dd_stamps id dd.dd_clock;
  Queue.push (id, dd.dd_clock) dd.dd_order

let dedup_find dd id =
  if dd.dd_cap = 0 then None
  else
    Mutex.protect dd.dd_mutex (fun () ->
        match Hashtbl.find_opt dd.dd_entries id with
        | Some bytes ->
            dedup_touch dd id;
            Some bytes
        | None -> None)

let dedup_store dd id bytes =
  if dd.dd_cap > 0 && id >= 0 then
    Mutex.protect dd.dd_mutex (fun () ->
        Hashtbl.replace dd.dd_entries id bytes;
        dedup_touch dd id;
        let rec evict () =
          if Hashtbl.length dd.dd_entries > dd.dd_cap then
            match Queue.take_opt dd.dd_order with
            | None -> ()
            | Some (victim, stamp) ->
                if Hashtbl.find_opt dd.dd_stamps victim = Some stamp then begin
                  Hashtbl.remove dd.dd_entries victim;
                  Hashtbl.remove dd.dd_stamps victim
                end;
                evict ()
        in
        evict ())

type t = {
  cfg : config;
  service : Service.t;
  health : Serial.wire_health -> Serial.wire_health;
  selftest : (unit -> (float, string) result) option;
  (* sentinel-only probe inference (DESIGN.md §16): Ok margin_bits when the
     lane verifies, Error detail when it does not. None = shard was started
     without a sentinel deployment, so it cannot vouch for itself. *)
  listen_fd : Unix.file_descr;
  stop_flag : bool Atomic.t;
  inflight : int Atomic.t;
  accepted : int Atomic.t;
  served : int Atomic.t;
  rejected : int Atomic.t;
  corrupt : int Atomic.t;
  dedup_hits : int Atomic.t;
  cancel_hits : int Atomic.t;
  dedup : dedup;
  (* rq_id -> ticket of every request currently between submit and outcome:
     the lookup table a CNCL frame trips. Ids are client-assigned, so a
     client reusing an id concurrently shadows its own earlier entry — its
     own cancellation scope to lose. *)
  pending : (int, Service.ticket) Hashtbl.t;
  pending_mutex : Mutex.t;
  conns : (Unix.file_descr, unit) Hashtbl.t;
  conns_mutex : Mutex.t;
  mutable accept_thread : Thread.t option;
}

let stats t =
  {
    srv_accepted = Atomic.get t.accepted;
    srv_served = Atomic.get t.served;
    srv_rejected = Atomic.get t.rejected;
    srv_corrupt = Atomic.get t.corrupt;
    srv_dedup_hits = Atomic.get t.dedup_hits;
    srv_cancelled = Atomic.get t.cancel_hits;
  }

let track t fd = Mutex.protect t.conns_mutex (fun () -> Hashtbl.replace t.conns fd ())
let untrack t fd = Mutex.protect t.conns_mutex (fun () -> Hashtbl.remove t.conns fd)

let default_health = function
  | Serial.Health_ping -> Serial.Health_ack { ha_ok = true; ha_detail = "shard" }
  | Serial.Health_kill _ | Serial.Health_report _ | Serial.Health_ack _ | Serial.Health_selftest ->
      Serial.Health_ack { ha_ok = false; ha_detail = "not a supervisor" }

(* The supervisor's quarantine probe: answered by the shard itself (before
   the pluggable [health] hook) because only the shard can run its own
   sentinel lane. A shard without a selftest hook answers honestly that it
   cannot vouch for itself — the supervisor treats that as non-exonerating. *)
let run_selftest t =
  match t.selftest with
  | None -> Serial.Health_ack { ha_ok = false; ha_detail = "no sentinel deployment" }
  | Some probe -> (
      match probe () with
      | Ok margin ->
          Serial.Health_ack { ha_ok = true; ha_detail = Printf.sprintf "margin %.2f bits" margin }
      | Error detail -> Serial.Health_ack { ha_ok = false; ha_detail = detail }
      | exception e -> Serial.Health_ack { ha_ok = false; ha_detail = Printexc.to_string e })

let error_response t ~id (err : Herr.error) reason =
  Atomic.incr t.rejected;
  (match err with Herr.Corrupt_frame _ -> Atomic.incr t.corrupt | _ -> ());
  {
    Serial.rs_id = id;
    rs_shard = t.cfg.srv_shard;
    rs_served_by = "";
    rs_degraded = false;
    rs_attempts = 0;
    rs_margin_bits = Float.nan;
    rs_sentinel = [||];
    rs_result = Error (err, Herr.context ~backend:"net" reason);
  }

let response_of_outcome t ~id (out : Service.outcome) =
  let rs_result =
    match out.Service.out_result with
    | Ok tensor ->
        Atomic.incr t.served;
        Ok (tensor.Tensor.shape, tensor.Tensor.data)
    | Error (err, ctx) ->
        Atomic.incr t.rejected;
        Error (err, ctx)
  in
  {
    Serial.rs_id = id;
    rs_shard = t.cfg.srv_shard;
    rs_served_by = out.Service.out_served_by;
    rs_degraded = out.Service.out_degraded;
    rs_attempts = out.Service.out_attempts;
    rs_margin_bits = out.Service.out_margin_bits;
    rs_sentinel = out.Service.out_sentinel;
    rs_result;
  }

let handle_request t (rq : Serial.wire_request) =
  if Atomic.get t.inflight >= t.cfg.srv_max_inflight then
    error_response t ~id:rq.Serial.rq_id
      (Herr.Overloaded
         { queue_depth = Atomic.get t.inflight; high_water = t.cfg.srv_max_inflight })
      "inflight cap"
  else begin
    Atomic.incr t.inflight;
    Fun.protect
      ~finally:(fun () -> Atomic.decr t.inflight)
      (fun () ->
        let image = Tensor.of_array rq.Serial.rq_shape rq.Serial.rq_image in
        let ticket =
          Service.submit t.service ~deadline_ms:rq.Serial.rq_deadline_ms ~seed:rq.Serial.rq_seed
            image
        in
        (* visible to CNCL for exactly the submit->outcome window *)
        Mutex.protect t.pending_mutex (fun () ->
            Hashtbl.replace t.pending rq.Serial.rq_id ticket);
        Fun.protect
          ~finally:(fun () ->
            Mutex.protect t.pending_mutex (fun () -> Hashtbl.remove t.pending rq.Serial.rq_id))
          (fun () -> response_of_outcome t ~id:rq.Serial.rq_id (Service.await t.service ticket)))
  end

(* One received frame -> one frame to send back, or None to close. *)
let answer t payload : string option =
  let reply_response rsp =
    let w = Serial.writer () in
    Serial.write_response w rsp;
    Some (Serial.contents w)
  in
  match Wire.frame_tag payload with
  | "REQ1" -> (
      match Serial.read_request (Serial.reader payload) with
      | rq -> (
          (* idempotency: a duplicate of an already-served id — a client
             retry after a lost response, or a hedge sibling — is answered
             from the cache with the exact bytes of the first answer, so
             duplicates are bit-identically safe and execute zero work *)
          match dedup_find t.dedup rq.Serial.rq_id with
          | Some bytes ->
              Atomic.incr t.dedup_hits;
              Some bytes
          | None -> (
              match handle_request t rq with
              | rsp ->
                  let w = Serial.writer () in
                  Serial.write_response w rsp;
                  let bytes = Serial.contents w in
                  (* only successes: a failed request must stay retryable *)
                  (match rsp.Serial.rs_result with
                  | Ok _ -> dedup_store t.dedup rq.Serial.rq_id bytes
                  | Error _ -> ());
                  Some bytes
              | exception e ->
                  (* a bug in the serving path must still answer the wire *)
                  reply_response
                    (error_response t ~id:rq.Serial.rq_id
                       (Herr.Worker_crashed
                          { worker = t.cfg.srv_shard; reason = Printexc.to_string e })
                       "serve")))
      | exception Serial.Corrupt reason ->
          reply_response
            (error_response t ~id:(-1) (Herr.Corrupt_frame { frame = "REQ1"; reason }) "recv")
      | exception Invalid_argument reason ->
          reply_response
            (error_response t ~id:(-1) (Herr.Corrupt_frame { frame = "REQ1"; reason }) "recv"))
  | "CNCL" -> (
      match Serial.read_cancel (Serial.reader payload) with
      | cn ->
          let found =
            match
              Mutex.protect t.pending_mutex (fun () -> Hashtbl.find_opt t.pending cn.Serial.cn_id)
            with
            | Some ticket ->
                Service.cancel ticket ~reason:cn.Serial.cn_reason;
                true
            | None -> false
          in
          if found then Atomic.incr t.cancel_hits;
          let w = Serial.writer () in
          Serial.write_health w
            (Serial.Health_ack
               { ha_ok = found; ha_detail = (if found then "cancelled" else "not in flight") });
          Some (Serial.contents w)
      | exception Serial.Corrupt reason ->
          reply_response
            (error_response t ~id:(-1) (Herr.Corrupt_frame { frame = "CNCL"; reason }) "recv"))
  | "HLTH" -> (
      match Serial.read_health (Serial.reader payload) with
      | h ->
          let reply =
            match h with Serial.Health_selftest -> run_selftest t | h -> t.health h
          in
          let w = Serial.writer () in
          Serial.write_health w reply;
          Some (Serial.contents w)
      | exception Serial.Corrupt reason ->
          reply_response
            (error_response t ~id:(-1) (Herr.Corrupt_frame { frame = "HLTH"; reason }) "recv"))
  | tag ->
      reply_response
        (error_response t ~id:(-1)
           (Herr.Corrupt_frame { frame = (if tag = "" then "????" else tag); reason = "unknown tag" })
           "recv")

let conn_loop t fd =
  let rec loop () =
    if Atomic.get t.stop_flag then ()
    else
      match
        Wire.recv_frame_idle ~max_frame:t.cfg.srv_max_frame fd
          ~idle_deadline:(Wire.now () +. t.cfg.srv_idle_timeout_s)
          ~frame_budget_s:t.cfg.srv_read_deadline_s
      with
      (* a quiet connection hanging up — or just quiet past the idle
         timeout — is normal client behaviour, not a protocol fault *)
      | Error (Wire.Closed | Wire.Idle) -> ()
      | Error ((Wire.Stalled | Wire.Oversized _ | Wire.Io _) as fault) ->
          (* best-effort typed goodbye; the stream is no longer in sync *)
          let err =
            match fault with
            | Wire.Stalled ->
                Herr.Deadline_exceeded
                  { budget_ms = t.cfg.srv_read_deadline_s *. 1000.0; elapsed_ms = t.cfg.srv_read_deadline_s *. 1000.0 }
            | fault -> Herr.Corrupt_frame { frame = "????"; reason = Wire.fault_name fault }
          in
          let w = Serial.writer () in
          Serial.write_response w (error_response t ~id:(-1) err "recv");
          ignore
            (Wire.send_frame fd (Serial.contents w)
               ~deadline:(Wire.now () +. t.cfg.srv_write_deadline_s))
      | Ok payload -> (
          match answer t payload with
          | None -> ()
          | Some reply -> (
              match
                Wire.send_frame fd reply ~deadline:(Wire.now () +. t.cfg.srv_write_deadline_s)
              with
              | Ok () -> loop ()
              | Error _ -> ()))
  in
  (try loop () with _ -> ());
  untrack t fd;
  Wire.close_noerr fd

(* Poll-then-accept: a thread parked inside [Unix.accept] is NOT woken when
   another thread closes the listen fd (the close just orphans it), so
   blocking straight on accept would leave [stop] joining forever. The
   select bounds how long the loop can go without observing [stop_flag]. *)
let accept_loop t =
  while not (Atomic.get t.stop_flag) do
    match Unix.select [ t.listen_fd ] [] [] 0.2 with
    | [], _, _ -> ()
    | _ -> (
        match Unix.accept t.listen_fd with
        | fd, _ ->
            Atomic.incr t.accepted;
            track t fd;
            ignore (Thread.create (conn_loop t) fd)
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        | exception Unix.Unix_error _ -> Atomic.set t.stop_flag true)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error _ ->
        (* listen socket closed by [stop] (or fatally broken): exit *)
        Atomic.set t.stop_flag true
  done

let start ?(health = default_health) ?selftest cfg service =
  let listen_fd = Wire.listen cfg.srv_addr in
  let t =
    {
      cfg;
      service;
      health;
      selftest;
      listen_fd;
      stop_flag = Atomic.make false;
      inflight = Atomic.make 0;
      accepted = Atomic.make 0;
      served = Atomic.make 0;
      rejected = Atomic.make 0;
      corrupt = Atomic.make 0;
      dedup_hits = Atomic.make 0;
      cancel_hits = Atomic.make 0;
      dedup = dedup_create cfg.srv_dedup_cap;
      pending = Hashtbl.create 64;
      pending_mutex = Mutex.create ();
      conns = Hashtbl.create 16;
      conns_mutex = Mutex.create ();
      accept_thread = None;
    }
  in
  t.accept_thread <- Some (Thread.create accept_loop t);
  t

let stop t =
  Atomic.set t.stop_flag true;
  Wire.close_noerr t.listen_fd;
  (match t.accept_thread with Some th -> Thread.join th | None -> ());
  (* connection threads wake on their closed fds and exit on their own *)
  Mutex.protect t.conns_mutex (fun () ->
      Hashtbl.iter (fun fd () -> (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())) t.conns;
      Hashtbl.reset t.conns)
