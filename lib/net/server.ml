(* Shard server: the socket front of one Chet_serve.Service (DESIGN.md §12).

   Thread-per-connection over blocking sockets: an accept thread hands each
   connection to a systhread that loops { recv REQ1 -> submit -> await ->
   send RSP1 }. The service's domain pool does the homomorphic work; the
   connection threads only shuttle frames, so plain threads (which interleave
   on one domain) are the right tool.

   Rejections are *answers*, not dropped connections:
   - over [max_inflight] admitted-but-unanswered requests, or a service
     draining/shedding -> typed [Overloaded] RSP1;
   - a frame that fails its checksum or schema -> typed [Corrupt_frame] RSP1
     (the outer length prefix kept the stream in sync, so the connection
     lives on);
   - only transport faults — peer gone, a read stalled past the connection
     deadline, an oversized length prefix — close the connection, because
     after those the byte stream has no trustworthy boundary. *)

module Serial = Chet_crypto.Serial
module Herr = Chet_herr.Herr
module Service = Chet_serve.Service
module Tensor = Chet_tensor.Tensor

type config = {
  srv_addr : Wire.addr;
  srv_shard : int;  (** stamped into every RSP1 this server answers *)
  srv_max_frame : int;
  srv_max_inflight : int;  (** concurrent requests admitted past the socket *)
  srv_read_deadline_s : float;  (** per-frame receive budget (also idle timeout) *)
  srv_write_deadline_s : float;
}

let default_config ?(shard = 0) addr =
  {
    srv_addr = addr;
    srv_shard = shard;
    srv_max_frame = Wire.default_max_frame;
    srv_max_inflight = 64;
    srv_read_deadline_s = 30.0;
    srv_write_deadline_s = 10.0;
  }

type stats = {
  srv_accepted : int;  (** connections accepted *)
  srv_served : int;  (** RSP1 answers carrying [Ok] *)
  srv_rejected : int;  (** RSP1 answers carrying a typed error *)
  srv_corrupt : int;  (** of those, [Corrupt_frame] rejections *)
}

type t = {
  cfg : config;
  service : Service.t;
  health : Serial.wire_health -> Serial.wire_health;
  listen_fd : Unix.file_descr;
  stop_flag : bool Atomic.t;
  inflight : int Atomic.t;
  accepted : int Atomic.t;
  served : int Atomic.t;
  rejected : int Atomic.t;
  corrupt : int Atomic.t;
  conns : (Unix.file_descr, unit) Hashtbl.t;
  conns_mutex : Mutex.t;
  mutable accept_thread : Thread.t option;
}

let stats t =
  {
    srv_accepted = Atomic.get t.accepted;
    srv_served = Atomic.get t.served;
    srv_rejected = Atomic.get t.rejected;
    srv_corrupt = Atomic.get t.corrupt;
  }

let track t fd = Mutex.protect t.conns_mutex (fun () -> Hashtbl.replace t.conns fd ())
let untrack t fd = Mutex.protect t.conns_mutex (fun () -> Hashtbl.remove t.conns fd)

let default_health = function
  | Serial.Health_ping -> Serial.Health_ack { ha_ok = true; ha_detail = "shard" }
  | Serial.Health_kill _ | Serial.Health_report _ | Serial.Health_ack _ ->
      Serial.Health_ack { ha_ok = false; ha_detail = "not a supervisor" }

let error_response t ~id (err : Herr.error) reason =
  Atomic.incr t.rejected;
  (match err with Herr.Corrupt_frame _ -> Atomic.incr t.corrupt | _ -> ());
  {
    Serial.rs_id = id;
    rs_shard = t.cfg.srv_shard;
    rs_served_by = "";
    rs_degraded = false;
    rs_attempts = 0;
    rs_result = Error (err, Herr.context ~backend:"net" reason);
  }

let response_of_outcome t ~id (out : Service.outcome) =
  let rs_result =
    match out.Service.out_result with
    | Ok tensor ->
        Atomic.incr t.served;
        Ok (tensor.Tensor.shape, tensor.Tensor.data)
    | Error (err, ctx) ->
        Atomic.incr t.rejected;
        Error (err, ctx)
  in
  {
    Serial.rs_id = id;
    rs_shard = t.cfg.srv_shard;
    rs_served_by = out.Service.out_served_by;
    rs_degraded = out.Service.out_degraded;
    rs_attempts = out.Service.out_attempts;
    rs_result;
  }

let handle_request t (rq : Serial.wire_request) =
  if Atomic.get t.inflight >= t.cfg.srv_max_inflight then
    error_response t ~id:rq.Serial.rq_id
      (Herr.Overloaded
         { queue_depth = Atomic.get t.inflight; high_water = t.cfg.srv_max_inflight })
      "inflight cap"
  else begin
    Atomic.incr t.inflight;
    Fun.protect
      ~finally:(fun () -> Atomic.decr t.inflight)
      (fun () ->
        let image = Tensor.of_array rq.Serial.rq_shape rq.Serial.rq_image in
        let out =
          Service.infer t.service ~deadline_ms:rq.Serial.rq_deadline_ms ~seed:rq.Serial.rq_seed
            image
        in
        response_of_outcome t ~id:rq.Serial.rq_id out)
  end

(* One received frame -> one frame to send back, or None to close. *)
let answer t payload : string option =
  let reply_response rsp =
    let w = Serial.writer () in
    Serial.write_response w rsp;
    Some (Serial.contents w)
  in
  match Wire.frame_tag payload with
  | "REQ1" -> (
      match Serial.read_request (Serial.reader payload) with
      | rq -> (
          match handle_request t rq with
          | rsp -> reply_response rsp
          | exception e ->
              (* a bug in the serving path must still answer the wire *)
              reply_response
                (error_response t ~id:rq.Serial.rq_id
                   (Herr.Worker_crashed { worker = t.cfg.srv_shard; reason = Printexc.to_string e })
                   "serve"))
      | exception Serial.Corrupt reason ->
          reply_response
            (error_response t ~id:(-1) (Herr.Corrupt_frame { frame = "REQ1"; reason }) "recv")
      | exception Invalid_argument reason ->
          reply_response
            (error_response t ~id:(-1) (Herr.Corrupt_frame { frame = "REQ1"; reason }) "recv"))
  | "HLTH" -> (
      match Serial.read_health (Serial.reader payload) with
      | h ->
          let w = Serial.writer () in
          Serial.write_health w (t.health h);
          Some (Serial.contents w)
      | exception Serial.Corrupt reason ->
          reply_response
            (error_response t ~id:(-1) (Herr.Corrupt_frame { frame = "HLTH"; reason }) "recv"))
  | tag ->
      reply_response
        (error_response t ~id:(-1)
           (Herr.Corrupt_frame { frame = (if tag = "" then "????" else tag); reason = "unknown tag" })
           "recv")

let conn_loop t fd =
  let rec loop () =
    if Atomic.get t.stop_flag then ()
    else
      match
        Wire.recv_frame ~max_frame:t.cfg.srv_max_frame fd
          ~deadline:(Wire.now () +. t.cfg.srv_read_deadline_s)
      with
      | Error Wire.Closed -> ()
      | Error ((Wire.Stalled | Wire.Oversized _ | Wire.Io _) as fault) ->
          (* best-effort typed goodbye; the stream is no longer in sync *)
          let err =
            match fault with
            | Wire.Stalled ->
                Herr.Deadline_exceeded
                  { budget_ms = t.cfg.srv_read_deadline_s *. 1000.0; elapsed_ms = t.cfg.srv_read_deadline_s *. 1000.0 }
            | fault -> Herr.Corrupt_frame { frame = "????"; reason = Wire.fault_name fault }
          in
          let w = Serial.writer () in
          Serial.write_response w (error_response t ~id:(-1) err "recv");
          ignore
            (Wire.send_frame fd (Serial.contents w)
               ~deadline:(Wire.now () +. t.cfg.srv_write_deadline_s))
      | Ok payload -> (
          match answer t payload with
          | None -> ()
          | Some reply -> (
              match
                Wire.send_frame fd reply ~deadline:(Wire.now () +. t.cfg.srv_write_deadline_s)
              with
              | Ok () -> loop ()
              | Error _ -> ()))
  in
  (try loop () with _ -> ());
  untrack t fd;
  Wire.close_noerr fd

(* Poll-then-accept: a thread parked inside [Unix.accept] is NOT woken when
   another thread closes the listen fd (the close just orphans it), so
   blocking straight on accept would leave [stop] joining forever. The
   select bounds how long the loop can go without observing [stop_flag]. *)
let accept_loop t =
  while not (Atomic.get t.stop_flag) do
    match Unix.select [ t.listen_fd ] [] [] 0.2 with
    | [], _, _ -> ()
    | _ -> (
        match Unix.accept t.listen_fd with
        | fd, _ ->
            Atomic.incr t.accepted;
            track t fd;
            ignore (Thread.create (conn_loop t) fd)
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        | exception Unix.Unix_error _ -> Atomic.set t.stop_flag true)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error _ ->
        (* listen socket closed by [stop] (or fatally broken): exit *)
        Atomic.set t.stop_flag true
  done

let start ?(health = default_health) cfg service =
  let listen_fd = Wire.listen cfg.srv_addr in
  let t =
    {
      cfg;
      service;
      health;
      listen_fd;
      stop_flag = Atomic.make false;
      inflight = Atomic.make 0;
      accepted = Atomic.make 0;
      served = Atomic.make 0;
      rejected = Atomic.make 0;
      corrupt = Atomic.make 0;
      conns = Hashtbl.create 16;
      conns_mutex = Mutex.create ();
      accept_thread = None;
    }
  in
  t.accept_thread <- Some (Thread.create accept_loop t);
  t

let stop t =
  Atomic.set t.stop_flag true;
  Wire.close_noerr t.listen_fd;
  (match t.accept_thread with Some th -> Thread.join th | None -> ());
  (* connection threads wake on their closed fds and exit on their own *)
  Mutex.protect t.conns_mutex (fun () ->
      Hashtbl.iter (fun fd () -> (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())) t.conns;
      Hashtbl.reset t.conns)
