(** Socket transport for the networked serving layer (DESIGN.md §12).

    The unit of transmission is one Serial frame (REQ1/RSP1/HLTH — already
    tagged, length-carrying and FNV-1a checksummed) wrapped in a 4-byte
    little-endian outer length prefix. The outer prefix keeps the {e stream}
    synchronised: a frame whose body fails its checksum is still fully
    consumed, so the connection can answer with a typed error and keep
    serving. Only a transport-level fault — peer gone, a read that stalls
    past its deadline, a declared length over the cap — forces the
    connection closed.

    Reads and writes are deadline-bounded with [Unix.select]; sockets stay
    blocking (plain thread-per-connection servers, no event loop). *)

type addr = Unix_sock of string | Tcp of string * int

val addr_to_string : addr -> string
(** [unix:PATH] or [tcp:HOST:PORT] — inverse of {!addr_of_string}. *)

val addr_of_string : string -> addr
(** Parse [unix:PATH] or [tcp:HOST:PORT].
    @raise Invalid_argument on anything else. *)

val sockaddr_of : addr -> Unix.sockaddr
(** Resolve to a [Unix.sockaddr]; TCP hostnames go through [gethostbyname].
    @raise Invalid_argument on an unknown host. *)

val domain_of : addr -> Unix.socket_domain

val default_max_frame : int
(** 16 MiB: a micro-model REQ1 is a few KiB; anything larger is a corrupt or
    hostile length prefix, not a request. *)

(** Transport faults. Typed so callers can tell benign quiet ({!Idle}) and
    clean hang-up ({!Closed}) from stream-desynchronising damage. *)
type fault =
  | Closed  (** peer closed (clean EOF or reset) *)
  | Stalled  (** deadline elapsed mid-read or mid-write *)
  | Idle
      (** no frame {e started} before the idle deadline: the connection is
          quiet, not broken — distinct from {!Stalled}, which means a frame
          died mid-transmission *)
  | Oversized of int  (** declared frame length beyond the cap *)
  | Io of string  (** any other transport error, by name *)

val fault_name : fault -> string

val listen : ?backlog:int -> addr -> Unix.file_descr
(** Bind and listen (unlinking a stale unix socket path first). Forces
    SIGPIPE to be ignored for the process — see the implementation note. *)

val connect : addr -> (Unix.file_descr, fault) result

val close_noerr : Unix.file_descr -> unit

val now : unit -> float
(** Wall clock ([Unix.gettimeofday]); all deadlines below are absolute
    values of this clock. *)

val read_exact : Unix.file_descr -> bytes -> deadline:float -> (unit, fault) result
val write_all : Unix.file_descr -> bytes -> deadline:float -> (unit, fault) result

val encode_prefix : int -> bytes
(** The 4-byte little-endian outer length prefix — exposed so the fault
    injector can send an honest prefix over a dishonest body. *)

val send_frame : Unix.file_descr -> string -> deadline:float -> (unit, fault) result
(** Write the 4-byte length prefix and the payload. *)

val recv_frame :
  ?max_frame:int -> Unix.file_descr -> deadline:float -> (string, fault) result
(** Read one length-prefixed frame. EOF after a partial body is
    [Error (Io "truncated frame")], not {!Closed}. *)

val recv_frame_idle :
  ?max_frame:int ->
  Unix.file_descr ->
  idle_deadline:float ->
  frame_budget_s:float ->
  (string, fault) result
(** Receive on a connection that may legitimately sit quiet between
    requests: the wait for the frame's {e first byte} is bounded by
    [idle_deadline] (expiry is the benign {!Idle}); once transmission has
    started the whole frame must land within [frame_budget_s] seconds. *)

val frame_tag : string -> string
(** The leading 4-character Serial tag of a received frame (["REQ1"],
    ["RSP1"], ["HLTH"], …), or [""] if the payload is shorter than that. *)
