(** Client side of the REQ1/RSP1 protocol: connect, send, await, retry.

    Retries follow the serving layer's taxonomy split: a typed [Overloaded],
    [Corrupt_frame], [Deadline_exceeded] or [Integrity_violation] answer, or
    a transport fault, is retried on a fresh connection with capped
    exponential backoff and seeded jitter; any other typed error is the
    server's final word. An [Integrity_violation] retry is the client-side
    failover of DESIGN.md §16 — the front door routes round-robin, so the
    retry lands on a different shard than the corrupting one.

    The same module carries the load generator's wire-fault injection: a
    {!fault} mangles the bytes of one attempt so tests can assert the server
    answers every mangling with a typed rejection instead of a hang. *)

(** Deliberate wire damage, applied to one attempt's bytes. *)
type fault =
  | Truncate  (** send only a prefix of the frame, then close *)
  | Bitflip of int  (** flip one bit, position seeded by the int *)
  | Stall of float  (** sleep this long mid-frame before finishing the send *)

type config = {
  cl_addr : Wire.addr;
  cl_max_frame : int;
  cl_io_deadline_s : float;  (** per-attempt transport budget (connect+send+recv) *)
  cl_retries : int;  (** attempts beyond the first *)
  cl_backoff_base_ms : float;
  cl_backoff_cap_ms : float;
  cl_seed : int;  (** jitter determinism *)
}

val default_config : Wire.addr -> config

val retryable : Chet_herr.Herr.error -> bool
(** The transient-or-reroutable subset of the error taxonomy — what
    {!request} retries. *)

type result_meta = {
  rm_response :
    (Chet_crypto.Serial.wire_response, Chet_herr.Herr.error * Chet_herr.Herr.context) result;
  rm_attempts : int;  (** wire attempts, including the final one *)
}

val request :
  ?fault:fault -> config -> Chet_crypto.Serial.wire_request -> result_meta
(** Send one REQ1, retrying {!retryable} failures on fresh connections.
    [fault] mangles only the first attempt, so a faulted request that
    eventually succeeds proves the recovery path end to end. *)

val health :
  ?deadline_s:float ->
  Wire.addr ->
  Chet_crypto.Serial.wire_health ->
  (Chet_crypto.Serial.wire_health, string) result
(** One HLTH round trip (ping / report / kill / selftest); never retried. *)

val ping :
  ?deadline_s:float -> Wire.addr -> (Chet_crypto.Serial.wire_health, string) result

val cancel :
  ?deadline_s:float -> Wire.addr -> id:int -> reason:string -> (bool, string) result
(** Send a CNCL control frame tripping the cancel token of in-flight request
    [id] on the peer. [Ok found] says whether the peer had it in flight —
    [Ok false] is the common benign race. Never retried: cancellation is
    advisory, and a lost cancel costs at most the work it tried to save. *)
