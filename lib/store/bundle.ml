module Compiler = Chet.Compiler
module Cost_model = Chet.Cost_model
module Circuit = Chet_nn.Circuit
module Hisa = Chet_hisa.Hisa
module Herr = Chet_herr.Herr
module Serial = Chet_crypto.Serial
module Jsonx = Chet_obs.Jsonx

type scale_summary = {
  ss_exponents : int * int * int * int;
  ss_evaluations : int;
  ss_rejections : int;
}

let summary_of_search (r : Chet.Scale_select.result) =
  {
    ss_exponents = r.exponents;
    ss_evaluations = r.evaluations;
    ss_rejections = List.length r.rejections;
  }

type t = {
  b_seed : int;
  b_rotation_policy : Compiler.rotation_key_policy;
  b_compiled : Compiler.compiled;
  b_keys : string option;
  b_scale : scale_summary option;
  b_calibration : Cost_model.calibration option;
  b_plan : Chet_plan.Plan.t option;  (* PLAN frame sidecar; warm restarts skip planning *)
}

let circuit_name t = t.b_compiled.Compiler.circuit.Circuit.name

let build ?scale ?calibration ?(with_keys = true) ?(with_plan = true) compiled ~seed
    ?(rotation_keys = Compiler.Selected_keys) () =
  {
    b_seed = seed;
    b_rotation_policy = rotation_keys;
    b_compiled = compiled;
    b_keys = (if with_keys then Compiler.export_keys compiled ~seed ~rotation_keys () else None);
    b_scale = scale;
    b_calibration = calibration;
    b_plan = (if with_plan then Some (Compiler.plan compiled) else None);
  }

(* ------------------------------------------------------------------ *)
(* meta.chet: BNDL frame                                                *)
(* ------------------------------------------------------------------ *)

let bundle_version = 1
let meta_file = "meta.chet"
let keys_file = "keys.rky2"
let calibration_file = "calibration.json"
let plan_file = "plan.chet"

let int_of_rotation_policy = function Compiler.Selected_keys -> 0 | Compiler.Power_of_two_keys -> 1

let rotation_policy_of_int = function
  | 0 -> Compiler.Selected_keys
  | 1 -> Compiler.Power_of_two_keys
  | k -> raise (Serial.Corrupt (Printf.sprintf "BNDL: unknown rotation-key policy %d" k))

(* The circuit name and seed lead the frame so [peek_meta] can stop there. *)
let meta_bytes t =
  let w = Serial.writer () in
  Serial.write_frame w "BNDL" (fun w ->
      Serial.write_int w bundle_version;
      Serial.write_string w (circuit_name t);
      Serial.write_int w t.b_seed;
      Serial.write_int w (int_of_rotation_policy t.b_rotation_policy);
      Serial.write_int w (if t.b_keys = None then 0 else 1);
      Serial.write_int w (if t.b_calibration = None then 0 else 1);
      (match t.b_scale with
      | None -> Serial.write_int w 0
      | Some s ->
          Serial.write_int w 1;
          let a, b, c, d = s.ss_exponents in
          List.iter (Serial.write_int w) [ a; b; c; d; s.ss_evaluations; s.ss_rejections ]);
      Compiler.write_compiled w t.b_compiled);
  Serial.contents w

type meta_head = {
  mh_name : string;
  mh_seed : int;
  mh_policy : Compiler.rotation_key_policy;
  mh_has_keys : bool;
  mh_has_calibration : bool;
  mh_scale : scale_summary option;
}

let read_meta ~circuit bytes =
  let r = Serial.reader bytes in
  let v =
    Serial.read_frame r "BNDL" (fun r ->
        let version = Serial.read_int r in
        if version <> bundle_version then
          raise (Serial.Corrupt (Printf.sprintf "BNDL: unsupported version %d" version));
        let mh_name = Serial.read_string r in
        let mh_seed = Serial.read_int r in
        let mh_policy = rotation_policy_of_int (Serial.read_int r) in
        let mh_has_keys = Serial.read_int r <> 0 in
        let mh_has_calibration = Serial.read_int r <> 0 in
        let mh_scale =
          match Serial.read_int r with
          | 0 -> None
          | 1 ->
              let i () = Serial.read_int r in
              let a = i () in
              let b = i () in
              let c = i () in
              let d = i () in
              let ev = i () in
              let rj = i () in
              Some { ss_exponents = (a, b, c, d); ss_evaluations = ev; ss_rejections = rj }
          | k -> raise (Serial.Corrupt (Printf.sprintf "BNDL: bad scale-summary flag %d" k))
        in
        let head = { mh_name; mh_seed; mh_policy; mh_has_keys; mh_has_calibration; mh_scale } in
        let compiled = Compiler.read_compiled ~circuit r in
        (head, compiled))
  in
  if not (Serial.reader_eof r) then raise (Serial.Corrupt "BNDL: trailing bytes");
  v

let peek_meta bytes =
  let r = Serial.reader bytes in
  Serial.read_frame_prefix r "BNDL" (fun r ->
      let version = Serial.read_int r in
      if version <> bundle_version then
        raise (Serial.Corrupt (Printf.sprintf "BNDL: unsupported version %d" version));
      let name = Serial.read_string r in
      let seed = Serial.read_int r in
      (name, seed))

(* ------------------------------------------------------------------ *)
(* Store composition                                                    *)
(* ------------------------------------------------------------------ *)

let files t =
  (meta_file, meta_bytes t)
  :: ((match t.b_keys with Some k -> [ (keys_file, k) ] | None -> [])
     @ (match t.b_calibration with
       | Some c -> [ (calibration_file, Jsonx.to_string (Cost_model.calibration_to_json c)) ]
       | None -> [])
     @ match t.b_plan with Some p -> [ (plan_file, Chet_plan.Plan.to_string p) ] | None -> [])

let save store t = Store.save store ~files:(files t)

type loaded = { l_generation : int; l_bytes : int; l_bundle : t }

let corrupt ~gen ~file reason =
  Herr.raise_err ~backend:"store" ~op:"bundle-load"
    (Herr.Corrupt_bundle
       { path = Printf.sprintf "gen-%06d/%s" gen file; reason })

let load store ~circuit =
  match Store.load store with
  | None -> None
  | Some (gen, payload) ->
      let l_bytes = List.fold_left (fun acc (_, b) -> acc + String.length b) 0 payload in
      let meta =
        match List.assoc_opt meta_file payload with
        | Some m -> m
        | None -> corrupt ~gen ~file:meta_file "bundle has no meta.chet"
      in
      let head, compiled =
        try read_meta ~circuit meta
        with Serial.Corrupt reason -> corrupt ~gen ~file:meta_file reason
      in
      let keys =
        match (head.mh_has_keys, List.assoc_opt keys_file payload) with
        | false, _ -> None
        | true, Some k -> Some k
        | true, None -> corrupt ~gen ~file:keys_file "meta promises evaluation keys, file absent"
      in
      let calibration =
        match (head.mh_has_calibration, List.assoc_opt calibration_file payload) with
        | false, _ -> None
        | true, None ->
            corrupt ~gen ~file:calibration_file "meta promises a calibration, file absent"
        | true, Some j -> (
            match Cost_model.calibration_of_json (Jsonx.of_string j) with
            | c -> Some c
            | exception Jsonx.Parse_error reason -> corrupt ~gen ~file:calibration_file reason
            | exception Failure reason -> corrupt ~gen ~file:calibration_file reason)
      in
      (* the plan sidecar is genuinely optional (older bundles predate it);
         when present it must parse and replay-validate against the circuit *)
      let plan =
        match List.assoc_opt plan_file payload with
        | None -> None
        | Some bytes -> (
            try Some (Chet_plan.Plan.of_string ~circuit bytes)
            with Serial.Corrupt reason -> corrupt ~gen ~file:plan_file reason)
      in
      Some
        {
          l_generation = gen;
          l_bytes;
          l_bundle =
            {
              b_seed = head.mh_seed;
              b_rotation_policy = head.mh_policy;
              b_compiled = compiled;
              b_keys = keys;
              b_scale = head.mh_scale;
              b_calibration = calibration;
              b_plan = plan;
            };
        }

let restore_factory t ~with_secret =
  Compiler.instantiate_factory_restored t.b_compiled ~seed:t.b_seed
    ~rotation_keys:t.b_rotation_policy ~keys:t.b_keys ~with_secret ()

(* Warm-restart plan deployment: the stored PLAN frame skips planning, the
   stored keys skip rotation-key generation. [None] when the bundle carries
   no plan (built with [with_plan:false], or predating the sidecar). *)
let restore_plan_runner ?pt_budget t ~with_secret =
  match t.b_plan with
  | None -> None
  | Some plan ->
      Some
        (Compiler.instantiate_plan_runner t.b_compiled ~plan ~seed:t.b_seed
           ~rotation_keys:t.b_rotation_policy ?pt_budget ?keys:t.b_keys ~with_secret ())
