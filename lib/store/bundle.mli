(** Deployment bundles: the compile-once / infer-many artifacts (§3.2) as a
    {!Store} generation.

    A bundle is everything the serving layer needs to come back after a
    process restart without repeating the offline pipeline: the compiled
    configuration (parameters, layout policy, rotation selection — a [CMPD]
    frame inside [meta.chet]'s [BNDL] frame), the public evaluation keys
    ([keys.rky2], an [RKY2] frame; absent for power-of-two targets, which
    re-derive keys from the seed), the scale-search outcome, and optionally
    the cost-model calibration in force at compile time
    ([calibration.json]). The secret key is {e never} part of a bundle — it
    is re-derived deterministically from the deployment seed at restore. *)

module Compiler = Chet.Compiler
module Cost_model = Chet.Cost_model
module Circuit = Chet_nn.Circuit
module Hisa = Chet_hisa.Hisa
module Herr = Chet_herr.Herr

type scale_summary = {
  ss_exponents : int * int * int * int;  (** (log2 Pc, log2 Pw, log2 Pu, log2 Pm) *)
  ss_evaluations : int;
  ss_rejections : int;
}

val summary_of_search : Chet.Scale_select.result -> scale_summary

type t = {
  b_seed : int;  (** deployment seed: keygen and per-request randomness root *)
  b_rotation_policy : Compiler.rotation_key_policy;
  b_compiled : Compiler.compiled;
  b_keys : string option;  (** [RKY2] public evaluation material; [None] for HEAAN *)
  b_scale : scale_summary option;
  b_calibration : Cost_model.calibration option;
  b_plan : Chet_plan.Plan.t option;
      (** compiled execution plan ([plan.chet], a [PLAN] frame); warm
          restarts skip planning when present *)
}

val circuit_name : t -> string

val build :
  ?scale:scale_summary -> ?calibration:Cost_model.calibration -> ?with_keys:bool ->
  ?with_plan:bool ->
  Compiler.compiled -> seed:int -> ?rotation_keys:Compiler.rotation_key_policy -> unit -> t
(** Assemble a bundle from a compile, running key generation once to export
    the public material (see {!Compiler.export_keys}). [with_keys:false]
    (default true) skips the export — for cleartext deployments, or when
    the restart is allowed to re-derive everything from the seed.
    [with_plan:false] (default true) skips compiling the execution plan
    sidecar (see {!Compiler.plan}). *)

val files : t -> (string * string) list
(** The payload files ({!Store.save} input): [meta.chet], and when present
    [keys.rky2] / [calibration.json] / [plan.chet]. *)

val save : Store.t -> t -> int
(** {!files} written as a fresh store generation; returns the generation id. *)

type loaded = {
  l_generation : int;
  l_bytes : int;  (** total verified payload bytes (the restore span's size) *)
  l_bundle : t;
}

val load : Store.t -> circuit:Circuit.t -> loaded option
(** Read back the newest store generation that passes checksum verification
    and parse it against [circuit]. [None] when the store holds no valid
    generation.
    @raise Herr.Fhe_error with {!Herr.Corrupt_bundle} when a generation
    passes the store's checksums but its schema is damaged or it was
    compiled for a different circuit — callers (the CLI) treat this like an
    empty store and fall back to a cold compile. *)

val peek_meta : string -> string * int
(** [(circuit name, seed)] from a [meta.chet] payload without needing the
    circuit — what [chet store ls] prints per generation.
    @raise Chet_crypto.Serial.Corrupt on damage. *)

val restore_factory :
  t -> with_secret:bool -> Compiler.backend_factory * Hisa.scheme_kind
(** The warm-restart deployment: {!Compiler.instantiate_factory_restored}
    with the bundle's seed, policy and stored keys — bit-identical to the
    deployment that produced the bundle. *)

val restore_plan_runner :
  ?pt_budget:int -> t -> with_secret:bool ->
  (Compiler.plan_runner * Hisa.scheme_kind) option
(** The warm-restart {e plan} deployment: the stored [PLAN] frame skips
    planning and the stored keys skip rotation-key generation
    ({!Compiler.instantiate_plan_runner}). [None] when the bundle carries no
    plan. Results are bit-identical to {!restore_factory} inference. *)
