(* Crash-safe generation store. Interface documentation in store.mli;
   bundle schema on top of it in bundle.ml; architecture in DESIGN.md §11.

   Write discipline: payload to <name>.tmp -> flush -> rename, MANIFEST the
   same way last, so the manifest rename is the single commit point. Reads
   trust nothing: a generation only serves after every length and FNV-1a-64
   digest in its manifest re-verifies against the bytes on disk. *)

module Herr = Chet_herr.Herr
module Serial = Chet_crypto.Serial

(* ------------------------------------------------------------------ *)
(* Kill points                                                          *)
(* ------------------------------------------------------------------ *)

type kill_point =
  | Pre_gen_dir
  | Pre_file_tmp of string
  | Mid_file_write of string
  | Pre_file_rename of string
  | Post_file_rename of string
  | Pre_manifest_tmp
  | Mid_manifest_write
  | Pre_manifest_rename
  | Post_manifest_rename

exception Killed of kill_point

let kill_point_name = function
  | Pre_gen_dir -> "pre-gen-dir"
  | Pre_file_tmp f -> "pre-tmp:" ^ f
  | Mid_file_write f -> "mid-write:" ^ f
  | Pre_file_rename f -> "pre-rename:" ^ f
  | Post_file_rename f -> "post-rename:" ^ f
  | Pre_manifest_tmp -> "pre-manifest-tmp"
  | Mid_manifest_write -> "mid-manifest-write"
  | Pre_manifest_rename -> "pre-manifest-rename"
  | Post_manifest_rename -> "post-manifest-rename"

let kill_points ~files =
  Pre_gen_dir
  :: List.concat_map
       (fun f -> [ Pre_file_tmp f; Mid_file_write f; Pre_file_rename f; Post_file_rename f ])
       files
  @ [ Pre_manifest_tmp; Mid_manifest_write; Pre_manifest_rename; Post_manifest_rename ]

(* The armed hook fires once then disarms, like Fault_backend's one-shot
   injection: a single save exercises exactly one abort. *)
let armed : kill_point option ref = ref None
let arm_kill_point p = armed := p

let with_kill_point p f =
  (match !armed with
  | Some q when q = p ->
      armed := None;
      raise (Killed p)
  | _ -> ());
  f ()

let check p = with_kill_point p (fun () -> ())
let check_opt = function Some p -> check p | None -> ()

(* ------------------------------------------------------------------ *)
(* Filesystem plumbing                                                  *)
(* ------------------------------------------------------------------ *)

let manifest_name = "MANIFEST"
let quarantine_dirname = "quarantine"

let mkdir_p path =
  let rec make p =
    if not (Sys.file_exists p) then begin
      make (Filename.dirname p);
      try Unix.mkdir p 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  make path

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let rec write_all fd s pos len =
  if len > 0 then begin
    let n = Unix.write_substring fd s pos len in
    write_all fd s (pos + n) (len - n)
  end

(* Durability of the rename itself needs the parent directory flushed;
   best-effort (some filesystems refuse fsync on a directory fd). *)
let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY; Unix.O_CLOEXEC ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      (try Unix.fsync fd with Unix.Unix_error _ -> ());
      (try Unix.close fd with Unix.Unix_error _ -> ())

(* tmp-write / flush / rename, with the three per-file kill checkpoints.
   [Mid_file_write] observes the first half of the payload on disk — the
   torn write the manifest checksum must later reject. *)
let write_atomic ?pre_tmp ?mid ?pre_rename ~dir ~name bytes =
  check_opt pre_tmp;
  let tmp = Filename.concat dir (name ^ ".tmp") in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC; Unix.O_CLOEXEC ] 0o644 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let half = String.length bytes / 2 in
      write_all fd bytes 0 half;
      check_opt mid;
      write_all fd bytes half (String.length bytes - half);
      Unix.fsync fd);
  check_opt pre_rename;
  Sys.rename tmp (Filename.concat dir name);
  fsync_dir dir

let rec remove_tree path =
  if Sys.is_directory path then begin
    Array.iter (fun e -> remove_tree (Filename.concat path e)) (Sys.readdir path);
    Unix.rmdir path
  end
  else Sys.remove path

(* ------------------------------------------------------------------ *)
(* Generations and manifests                                            *)
(* ------------------------------------------------------------------ *)

type t = { st_root : string; st_keep : int }

let root t = t.st_root
let gen_dirname id = Printf.sprintf "gen-%06d" id
let gen_path t id = Filename.concat t.st_root (gen_dirname id)
let quarantine_path t = Filename.concat t.st_root quarantine_dirname

let gen_id_of_dirname name =
  if String.length name = 10 && String.sub name 0 4 = "gen-" then
    match int_of_string_opt (String.sub name 4 6) with
    | Some id when id > 0 -> Some id
    | _ -> None
  else None

let list_generations t =
  (if Sys.file_exists t.st_root then Sys.readdir t.st_root else [||])
  |> Array.to_list
  |> List.filter_map (fun name ->
         if Sys.is_directory (Filename.concat t.st_root name) then gen_id_of_dirname name else None)
  |> List.sort (fun a b -> compare b a)

let generations = list_generations

let manifest_version = 1

type entry = { e_name : string; e_len : int; e_hash : int64 }

let write_manifest_bytes ~gen_id entries =
  let w = Serial.writer () in
  Serial.write_frame w "MFST" (fun w ->
      Serial.write_int w manifest_version;
      Serial.write_int w gen_id;
      Serial.write_int w (List.length entries);
      List.iter
        (fun e ->
          Serial.write_string w e.e_name;
          Serial.write_int w e.e_len;
          Serial.write_raw_int64 w e.e_hash)
        entries);
  Serial.contents w

let read_manifest_bytes bytes =
  let r = Serial.reader bytes in
  let v =
    Serial.read_frame r "MFST" (fun r ->
        let version = Serial.read_int r in
        if version <> manifest_version then
          raise (Serial.Corrupt (Printf.sprintf "unsupported manifest version %d" version));
        let gen_id = Serial.read_int r in
        let count = Serial.read_int r in
        if count < 0 || count > 4096 then raise (Serial.Corrupt "bad manifest entry count");
        let entries =
          List.init count (fun _ ->
              let e_name = Serial.read_string r in
              let e_len = Serial.read_int r in
              if e_len < 0 then raise (Serial.Corrupt "bad manifest entry length");
              let e_hash = Serial.read_raw_int64 r in
              { e_name; e_len; e_hash })
        in
        (gen_id, entries))
  in
  if not (Serial.reader_eof r) then raise (Serial.Corrupt "MFST: trailing bytes after manifest");
  v

let corrupt ~path reason = Herr.Corrupt_bundle { path; reason }

(* Verify one generation bottom-up: manifest frame first, then every listed
   file's existence, length and digest. Returns the verified contents so
   [load] never reads a byte it has not checksummed. *)
let verify_generation t id : (int * (string * string) list, Herr.error) result =
  let dir = gen_path t id in
  let mpath = Filename.concat dir manifest_name in
  if not (Sys.file_exists mpath) then Error (corrupt ~path:(gen_dirname id) "missing MANIFEST")
  else
    match read_manifest_bytes (read_file mpath) with
    | exception Serial.Corrupt reason -> Error (corrupt ~path:(gen_dirname id) reason)
    | exception Sys_error reason -> Error (corrupt ~path:(gen_dirname id) reason)
    | mid, _ when mid <> id ->
        Error (corrupt ~path:(gen_dirname id) (Printf.sprintf "manifest names generation %d" mid))
    | _, entries -> (
        let verify_entry e =
          let fpath = Filename.concat dir e.e_name in
          let rel = Filename.concat (gen_dirname id) e.e_name in
          if not (Sys.file_exists fpath) then Error (corrupt ~path:rel "listed file missing")
          else
            match read_file fpath with
            | exception Sys_error reason -> Error (corrupt ~path:rel reason)
            | bytes ->
                if String.length bytes <> e.e_len then
                  Error
                    (corrupt ~path:rel
                       (Printf.sprintf "length mismatch: manifest says %d, file has %d" e.e_len
                          (String.length bytes)))
                else if
                  not (Int64.equal (Serial.fnv1a64 bytes ~pos:0 ~len:e.e_len) e.e_hash)
                then Error (corrupt ~path:rel "checksum mismatch")
                else Ok (e.e_name, bytes)
        in
        let rec walk acc bytes = function
          | [] -> Ok (bytes, List.rev acc)
          | e :: rest -> (
              match verify_entry e with
              | Error err -> Error err
              | Ok ((_, b) as file) -> walk (file :: acc) (bytes + String.length b) rest)
        in
        match walk [] 0 entries with Ok r -> Ok r | Error e -> Error e)

type status = { g_id : int; g_result : (int, Herr.error) result }

let verify t =
  List.map
    (fun id ->
      {
        g_id = id;
        g_result =
          (match verify_generation t id with
          | Ok (bytes, _) -> Ok bytes
          | Error e -> Error e);
      })
    (list_generations t)

(* ------------------------------------------------------------------ *)
(* Quarantine                                                           *)
(* ------------------------------------------------------------------ *)

(* Move a damaged entry (generation dir or sidecar file) under quarantine/,
   keeping it for post-mortem instead of deleting evidence; the typed reason
   is written alongside so `chet store ls` can display it. *)
let quarantine_entry t ~name (reason : Herr.error) =
  mkdir_p (quarantine_path t);
  let src = Filename.concat t.st_root name in
  let rec fresh_dest k =
    let d =
      Filename.concat (quarantine_path t) (if k = 0 then name else Printf.sprintf "%s-%d" name k)
    in
    if Sys.file_exists d then fresh_dest (k + 1) else d
  in
  let dest = fresh_dest 0 in
  Sys.rename src dest;
  let reason_path =
    if Sys.is_directory dest then Filename.concat dest "QUARANTINE" else dest ^ ".reason"
  in
  (try
     let oc = open_out_bin reason_path in
     output_string oc (Herr.error_name reason ^ ": " ^ Herr.error_detail reason ^ "\n");
     close_out_noerr oc
   with Sys_error _ -> ());
  Filename.basename dest

(* ------------------------------------------------------------------ *)
(* Open & recovery                                                      *)
(* ------------------------------------------------------------------ *)

type report = {
  r_active : int option;
  r_verified_bytes : int;
  r_quarantined : (string * Herr.error) list;
  r_removed_tmp : int;
}

let open_ ?(keep = 3) rt =
  if keep < 1 then invalid_arg "Store.open_: keep must be >= 1";
  mkdir_p rt;
  mkdir_p (Filename.concat rt quarantine_dirname);
  let t = { st_root = rt; st_keep = keep } in
  (* stray *.tmp at the root (sidecar writes that never committed) are
     uncommitted by construction: delete *)
  let removed = ref 0 in
  Array.iter
    (fun name ->
      if Filename.check_suffix name ".tmp" then begin
        remove_tree (Filename.concat rt name);
        incr removed
      end)
    (Sys.readdir rt);
  (* verify newest-first; the first generation that proves itself becomes
     active, every generation that fails is quarantined with its typed
     reason — old or new, a lying bundle must never be served later *)
  let quarantined = ref [] in
  let active = ref None in
  let active_bytes = ref 0 in
  List.iter
    (fun id ->
      match verify_generation t id with
      | Ok (bytes, _) ->
          if !active = None then begin
            active := Some id;
            active_bytes := bytes
          end
      | Error reason ->
          let moved = quarantine_entry t ~name:(gen_dirname id) reason in
          quarantined := (moved, reason) :: !quarantined)
    (list_generations t);
  ( t,
    {
      r_active = !active;
      r_verified_bytes = !active_bytes;
      r_quarantined = List.rev !quarantined;
      r_removed_tmp = !removed;
    } )

let load t =
  let rec first = function
    | [] -> None
    | id :: rest -> (
        match verify_generation t id with
        | Ok (_, files) -> Some (id, files)
        | Error _ -> first rest)
  in
  first (list_generations t)

(* ------------------------------------------------------------------ *)
(* GC                                                                   *)
(* ------------------------------------------------------------------ *)

let quarantine_cap = 16

let gc t ~keep =
  if keep < 1 then invalid_arg "Store.gc: keep must be >= 1";
  let removed = ref [] in
  let rm_root name =
    remove_tree (Filename.concat t.st_root name);
    removed := name :: !removed
  in
  (match list_generations t with
  | gens when List.length gens > keep ->
      List.iteri (fun i id -> if i >= keep then rm_root (gen_dirname id)) gens
  | _ -> ());
  (* cap quarantine debris too: oldest (lexicographically-first, since
     generation names sort by id) entries go once the box overflows *)
  let qdir = quarantine_path t in
  if Sys.file_exists qdir then begin
    let entries =
      Sys.readdir qdir |> Array.to_list
      |> List.filter (fun n -> not (Filename.check_suffix n ".reason"))
      |> List.sort compare
    in
    let excess = List.length entries - quarantine_cap in
    if excess > 0 then
      List.iteri
        (fun i n ->
          if i < excess then begin
            remove_tree (Filename.concat qdir n);
            let reason = Filename.concat qdir (n ^ ".reason") in
            if Sys.file_exists reason then Sys.remove reason;
            removed := Filename.concat quarantine_dirname n :: !removed
          end)
        entries
  end;
  List.rev !removed

(* ------------------------------------------------------------------ *)
(* Save                                                                 *)
(* ------------------------------------------------------------------ *)

let valid_name name =
  name <> "" && name <> manifest_name
  && (not (Filename.check_suffix name ".tmp"))
  && name.[0] <> '.'
  && String.for_all (fun c -> c <> '/' && c <> '\\' && c <> '\000') name

let save t ~files =
  if files = [] then invalid_arg "Store.save: empty file list";
  List.iter
    (fun (name, _) ->
      if not (valid_name name) then
        invalid_arg (Printf.sprintf "Store.save: unusable file name %S" name))
    files;
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (name, _) ->
      if Hashtbl.mem seen name then
        invalid_arg (Printf.sprintf "Store.save: duplicate file name %S" name);
      Hashtbl.add seen name ())
    files;
  let id = match list_generations t with [] -> 1 | newest :: _ -> newest + 1 in
  let dir = gen_path t id in
  check Pre_gen_dir;
  mkdir_p dir;
  List.iter
    (fun (name, bytes) ->
      write_atomic ~pre_tmp:(Pre_file_tmp name) ~mid:(Mid_file_write name)
        ~pre_rename:(Pre_file_rename name) ~dir ~name bytes;
      check (Post_file_rename name))
    files;
  let entries =
    List.map
      (fun (name, bytes) ->
        {
          e_name = name;
          e_len = String.length bytes;
          e_hash = Serial.fnv1a64 bytes ~pos:0 ~len:(String.length bytes);
        })
      files
  in
  write_atomic ~pre_tmp:Pre_manifest_tmp ~mid:Mid_manifest_write ~pre_rename:Pre_manifest_rename
    ~dir ~name:manifest_name
    (write_manifest_bytes ~gen_id:id entries);
  check Post_manifest_rename;
  ignore (gc t ~keep:t.st_keep);
  id

(* ------------------------------------------------------------------ *)
(* Sidecar state files                                                  *)
(* ------------------------------------------------------------------ *)

let state_frame bytes =
  let w = Serial.writer () in
  Serial.write_frame w "STAT" (fun w -> Serial.write_string w bytes);
  Serial.contents w

let parse_state_frame bytes =
  let r = Serial.reader bytes in
  let v = Serial.read_frame r "STAT" Serial.read_string in
  if not (Serial.reader_eof r) then raise (Serial.Corrupt "STAT: trailing bytes");
  v

let save_state t ~name bytes =
  if not (valid_name name) || gen_id_of_dirname name <> None || name = quarantine_dirname then
    invalid_arg (Printf.sprintf "Store.save_state: unusable sidecar name %S" name);
  write_atomic ~pre_tmp:(Pre_file_tmp name) ~mid:(Mid_file_write name)
    ~pre_rename:(Pre_file_rename name) ~dir:t.st_root ~name (state_frame bytes)

let load_state t ~name =
  let path = Filename.concat t.st_root name in
  if not (Sys.file_exists path) then None
  else
    match parse_state_frame (read_file path) with
    | bytes -> Some (Ok bytes)
    | exception Serial.Corrupt reason ->
        let err = corrupt ~path:name reason in
        ignore (quarantine_entry t ~name err);
        Some (Error err)
    | exception Sys_error reason -> Some (Error (corrupt ~path:name reason))
