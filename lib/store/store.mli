(** Crash-safe on-disk deployment store (DESIGN.md §11).

    A store is a directory of immutable numbered {e generations}
    ([gen-000001/], [gen-000002/], …), each holding a set of named payload
    files plus a [MANIFEST] — a checksummed [MFST] frame recording every
    file's byte length and FNV-1a-64 digest. Writes follow atomic-rename
    discipline end to end: every payload is written to [<name>.tmp],
    flushed and renamed; the [MANIFEST] is written the same way {e last},
    making its rename the commit point. A crash at any instant therefore
    leaves either the previous generation or the new one fully intact —
    never a torn hybrid, which {!open_}'s recovery pass proves by
    re-verifying every checksum.

    On open, generations that fail verification (missing manifest, torn
    file, flipped bit) are moved into [quarantine/] with a typed
    {!Chet_herr.Herr.Corrupt_bundle} reason instead of crashing the
    process, and the newest generation that {e does} verify becomes the
    active one — the fall-back-to-previous-generation contract. Old
    generations beyond a retention budget are garbage-collected.

    Small mutable {e sidecar} files (the serving layer's breaker/rung
    snapshot) live beside the generations under the same
    tmp-write/flush/rename + checksum-frame discipline.

    The kill-point hook ({!arm_kill_point}, mirroring
    {!Chet_hisa.Fault_backend}'s seeded-injection style) aborts the write
    sequence at any enumerated instant so tests can prove the recovery
    contract at every point of the write sequence. *)

module Herr = Chet_herr.Herr

(** {1 Kill points}

    Every checkpoint of {!save}'s write sequence, in execution order.
    [Mid_file_write f] fires with the first half of [f]'s bytes already on
    disk — the torn-write case the manifest checksums must catch. *)

type kill_point =
  | Pre_gen_dir  (** before the generation directory exists *)
  | Pre_file_tmp of string  (** before [<name>.tmp] is created *)
  | Mid_file_write of string  (** half of [<name>.tmp] written and flushed *)
  | Pre_file_rename of string  (** [<name>.tmp] complete, not yet renamed *)
  | Post_file_rename of string  (** [<name>] committed, manifest still absent *)
  | Pre_manifest_tmp
  | Mid_manifest_write
  | Pre_manifest_rename  (** everything but the commit rename done *)
  | Post_manifest_rename  (** committed; old-generation GC still pending *)

exception Killed of kill_point

val kill_point_name : kill_point -> string

val kill_points : files:string list -> kill_point list
(** The full write sequence for a bundle with these payload names, in the
    order {!save} traverses it — the enumeration the recovery tests sweep. *)

val arm_kill_point : kill_point option -> unit
(** Arm the hook: the next time {!save} (or a sidecar write) reaches the
    given point it raises {!Killed} — once; the hook disarms on firing.
    [None] disarms. Test-only machinery, like [Fault_backend.wrap]. *)

val with_kill_point : kill_point -> (unit -> 'a) -> 'a
(** Run the thunk at a kill point: raises {!Killed} first if the armed hook
    matches. The store's own write sequence is built from this; exposed so
    tests (or embedders with custom write sequences) can add checkpoints. *)

(** {1 The store} *)

type t

type report = {
  r_active : int option;  (** generation chosen to serve after recovery *)
  r_verified_bytes : int;  (** payload bytes checksummed in the active generation *)
  r_quarantined : (string * Herr.error) list;  (** moved entry, typed reason *)
  r_removed_tmp : int;  (** stray [*.tmp] debris deleted *)
}

val open_ : ?keep:int -> string -> t * report
(** Open (creating if needed) the store rooted at the given directory and
    run recovery: delete uncommitted [*.tmp] debris, verify every
    generation's manifest and checksums, quarantine the ones that fail,
    pick the newest valid generation as active. [keep] (default 3) is the
    retention budget {!save} applies to old generations. Never raises on
    damaged contents — damage is reported, typed, in the report. *)

val root : t -> string

val save : t -> files:(string * string) list -> int
(** Write [(name, bytes)] pairs as a fresh generation (atomic as described
    above), then garbage-collect generations beyond the retention budget.
    Returns the new generation id.
    @raise Invalid_argument on an empty file list or an unusable name
    (path separators, ["MANIFEST"], leading dot, [".tmp"] suffix).
    @raise Killed when the test hook is armed. *)

val load : t -> (int * (string * string) list) option
(** Re-verify and read back the newest valid generation ([None] if the
    store holds no valid generation). Checksums are checked again at read
    time; a generation that rotted since {!open_} is skipped, not served. *)

val generations : t -> int list
(** Existing generation ids, newest first (valid or not). *)

type status = { g_id : int; g_result : (int, Herr.error) result }
(** [g_result] is [Ok bytes] (payload bytes verified) or the typed reason
    verification failed. *)

val verify : t -> status list
(** Verify every generation in place, newest first. Read-only: corrupt
    generations are reported, not quarantined (that happens on {!open_}). *)

val gc : t -> keep:int -> string list
(** Remove generations beyond the [keep] newest and cap quarantine debris;
    returns the removed directory names. *)

(** {1 Sidecar state files} *)

val save_state : t -> name:string -> string -> unit
(** Atomically replace the sidecar [<name>] (a [STAT] checksum frame,
    tmp-write/flush/rename like any payload). *)

val load_state : t -> name:string -> (string, Herr.error) result option
(** [None] if absent; [Some (Error _)] if present but corrupt — the damaged
    file is quarantined so the next boot starts clean. *)
