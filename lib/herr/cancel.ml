(* Cooperative cancellation token (DESIGN.md §13).

   One token per request, created by the serving layer and threaded through
   the pool into the executor, which polls it at every circuit-node boundary
   — the granularity at which per-node spans already hook. FHE ops are
   expensive enough (tens of ms to seconds each, CHET Table 1) that
   node-boundary polling frees a worker within one op instead of one full
   encrypted inference, while costing one atomic load per node when the
   token is armed.

   The token is seeded-clock-friendly: it carries an optional absolute
   deadline *on an injected clock* ([now] is a closure, monotonic in
   production, manual in tests), so deadline expiry trips it without any
   watcher thread. Explicit trips ([trip]) carry a typed reason; the first
   trip wins and later trips are ignored, so the reason a worker observes is
   the reason the request actually died of.

   This module lives next to [Herr] in the dependency-free error library:
   the executor (above the HISA) and the serving/net layers (above the
   executor) must share one token type without a dependency cycle. *)

type reason =
  | Deadline  (** the request's latency budget ran out *)
  | Abandoned  (** the caller stopped waiting for the result *)
  | Superseded  (** a hedge sibling already produced the answer *)
  | Requested of string  (** explicit client cancel, e.g. a CNCL frame *)

let reason_label = function
  | Deadline -> "deadline"
  | Abandoned -> "abandoned"
  | Superseded -> "superseded"
  | Requested r -> if r = "" then "requested" else r

type t = {
  tripped : reason option Atomic.t;
  deadline : float option;  (** absolute seconds on [now]'s clock *)
  now : unit -> float;
}

let make ?deadline ?(now = fun () -> 0.0) () = { tripped = Atomic.make None; deadline; now }

(* A token that can never trip — for callers that want the cancellable code
   path without cancellation (ablation runs, the compiler's analysis
   executions). *)
let never () = make ()

(* First trip wins: a request that was explicitly cancelled and *then* blew
   its deadline reports the cancel, not the deadline. *)
let trip t reason = ignore (Atomic.compare_and_set t.tripped None (Some reason))

let status t =
  match Atomic.get t.tripped with
  | Some _ as r -> r
  | None -> (
      match t.deadline with
      | Some d when t.now () >= d ->
          (* latch, so the reported reason stays stable even if an explicit
             trip races in afterwards *)
          trip t Deadline;
          Atomic.get t.tripped
      | _ -> None)

let tripped t = status t <> None

(* The executor's per-node poll: raise the typed taxonomy error carrying the
   node at which the worker noticed the trip. *)
let check ?(backend = "executor") ?layer ~node_id t =
  match status t with
  | None -> ()
  | Some r ->
      Herr.raise_err ~backend ~node_id ?layer ~op:"cancel"
        (Herr.Cancelled { node_id = Some node_id; reason = reason_label r })
