(* Typed FHE error taxonomy — the single vocabulary every layer of the stack
   (crypto schemes, HISA backends, runtime kernels, compiler passes) uses to
   report a violated invariant.

   CHET's contract is that compiled programs are correct by construction:
   scales stay consistent, the modulus chain never exhausts, rescale divisors
   are legal (§5.2 of the paper). When that contract is broken — a compiler
   bug, a corrupted ciphertext off the wire, a mis-configured deployment —
   the failure must carry enough structure for the caller to either repair
   (retry the next candidate configuration) or report (which circuit node,
   which op, what was expected vs observed). A bare [failwith] can do
   neither.

   This module lives in its own dependency-free library so that both
   [Chet_crypto] (below the HISA) and [Chet_hisa]/[Chet_runtime] (above it)
   can raise the same exception; [Chet_hisa.Herr] re-exports it. *)

type error =
  | Scale_mismatch of { expected : float; got : float }
      (** Operands of an add/sub (or ct vs plaintext) disagree on their
          fixed-point scale, or a backend reported a scale that contradicts
          the checker's shadow computation. *)
  | Level_mismatch of { expected : int; got : int }
      (** Modulus levels (RNS prime count, or logQ bits) disagree: between
          binary-op operands, or between a backend's report and the
          checker's prediction. *)
  | Modulus_exhausted of { level : int; requested : int }
      (** The modulus chain ran out: [level] is what remains, [requested]
          what the op needed (primes to drop, bits to consume, or 1 for "any
          headroom before a multiply"). Recoverable by recompiling with more
          primes or smaller scales. *)
  | Slot_overflow of { slots : int; requested : int }
      (** A vector, layout or rotation does not fit the SIMD width. *)
  | Illegal_rescale of { divisor : int; reason : string }
      (** The rescale divisor is not one the scheme can apply (not a product
          of next chain primes / not a power of two), or the backend failed
          to apply it (a dropped rescale). *)
  | Numeric_blowup of { slot : int; value : float }
      (** A NaN/Inf (or otherwise non-encodable value) appeared in plaintext
          data entering or leaving the scheme. *)
  | Corrupt_ciphertext of { reason : string }
      (** A ciphertext failed an integrity check: use-after-free, decode
          values outside any plausible message magnitude, checksum failure. *)
  | Shape_mismatch of { expected : string; got : string }
      (** Tensor/layout geometry disagreement in the runtime kernels. *)
  | Missing_node of { node_id : int }
      (** The executor was asked about a circuit node it has no value or
          layout assignment for. *)
  | Missing_rotation_key of { amount : int }
      (** The evaluator lacks the Galois key for this rotation amount (and
          could not decompose it into available keys). *)
  | Invalid_op of { reason : string }
      (** Structured catch-all for other violated preconditions. *)
  | Overloaded of { queue_depth : int; high_water : int }
      (** The serving layer shed this request: the job queue was at or past
          its high-water mark when it arrived. The request was never
          enqueued; retrying later (client-side backoff) is safe. *)
  | Deadline_exceeded of { budget_ms : float; elapsed_ms : float }
      (** The request's deadline passed before a result was produced —
          either while queued (the pool never started it) or mid-inference
          (the caller abandoned the in-flight attempt). *)
  | Worker_crashed of { worker : int; reason : string }
      (** A pool worker caught a non-FHE exception escaping an inference
          (a backend bug, not a typed invariant violation). The worker
          itself survives; the request is reported failed with the
          captured reason. *)
  | Corrupt_bundle of { path : string; reason : string }
      (** A persisted deployment-store entry (generation, manifest or
          sidecar state file) failed its integrity check: missing file,
          length or checksum mismatch, unparseable manifest. The store
          quarantines the entry and serves the previous generation; this
          error reports what was damaged and why. *)
  | Corrupt_frame of { frame : string; reason : string }
      (** A wire frame (REQ1 request, RSP1 response, HLTH health probe, or
          any other Serial frame arriving over a socket) failed its
          integrity check: bad tag, implausible length, checksum mismatch,
          or a truncated/torn transmission. The connection's byte stream
          can no longer be trusted to be in sync, so the peer answers with
          this typed rejection and closes — never hangs or parses on. *)
  | Cancelled of { node_id : int option; reason : string }
      (** A cooperative cancel token tripped while the request was running:
          the caller abandoned it, a hedge sibling won, a CNCL frame asked
          for it, or its deadline passed mid-circuit. [node_id] is the
          circuit node at whose boundary the executor noticed the trip —
          the work completed up to there was kept honest, everything after
          was saved. Not retryable: the requester no longer wants the
          answer. *)
  | Integrity_violation of { slot : int; expected : float; got : float }
      (** A sentinel slot decrypted to a value outside the compiled
          precision tolerance of its clear-reference prediction: the
          ciphertext was silently corrupted somewhere between encrypt and
          decrypt (a bit flip, a buggy kernel, a faulty shard). The primary
          result shares the ciphertext and cannot be trusted. Retryable —
          on a {e different} shard. [slot] is the worst offending sentinel
          slot; [expected]/[got] are its reference and decrypted values. *)
  | Precision_exhausted of { margin_bits : float; tolerance : float }
      (** The noise-margin guard's conservative CKKS error bound crossed
          the compiled precision tolerance: continuing would decrypt to
          garbage that no scale/level screen can catch. Raised {e before}
          the bad decrypt. [margin_bits] is log2(tolerance / error-bound)
          at the point of exhaustion (<= 0 by definition here). Recoverable
          only by recompiling with more modulus budget or larger scales. *)

type context = {
  op : string;  (** HISA/kernel operation, e.g. ["mul"], ["conv2d"] *)
  backend : string;  (** origin layer, e.g. ["rns_ckks"], ["clear"], ["checked"] *)
  node_id : int option;  (** circuit node, once the executor has attached it *)
  layer : string option;  (** human description of the circuit layer *)
}

exception Fhe_error of error * context

let context ?(backend = "") ?node_id ?layer op = { op; backend; node_id; layer }

let raise_err ?backend ?node_id ?layer ~op error =
  raise (Fhe_error (error, context ?backend ?node_id ?layer op))

let error_name = function
  | Scale_mismatch _ -> "scale mismatch"
  | Level_mismatch _ -> "level mismatch"
  | Modulus_exhausted _ -> "modulus exhausted"
  | Slot_overflow _ -> "slot overflow"
  | Illegal_rescale _ -> "illegal rescale"
  | Numeric_blowup _ -> "numeric blowup"
  | Corrupt_ciphertext _ -> "corrupt ciphertext"
  | Shape_mismatch _ -> "shape mismatch"
  | Missing_node _ -> "missing node"
  | Missing_rotation_key _ -> "missing rotation key"
  | Invalid_op _ -> "invalid op"
  | Overloaded _ -> "overloaded"
  | Deadline_exceeded _ -> "deadline exceeded"
  | Worker_crashed _ -> "worker crashed"
  | Corrupt_bundle _ -> "corrupt bundle"
  | Corrupt_frame _ -> "corrupt frame"
  | Cancelled _ -> "cancelled"
  | Integrity_violation _ -> "integrity violation"
  | Precision_exhausted _ -> "precision exhausted"

let error_detail = function
  | Scale_mismatch { expected; got } -> Printf.sprintf "expected scale %.6g, got %.6g" expected got
  | Level_mismatch { expected; got } -> Printf.sprintf "expected level %d, got %d" expected got
  | Modulus_exhausted { level; requested } ->
      Printf.sprintf "%d level(s)/bit(s) remaining, op needs %d" level requested
  | Slot_overflow { slots; requested } -> Printf.sprintf "%d slots available, %d requested" slots requested
  | Illegal_rescale { divisor; reason } -> Printf.sprintf "divisor %d: %s" divisor reason
  | Numeric_blowup { slot; value } -> Printf.sprintf "slot %d holds %h (%.6g)" slot value value
  | Corrupt_ciphertext { reason } -> reason
  | Shape_mismatch { expected; got } -> Printf.sprintf "expected %s, got %s" expected got
  | Missing_node { node_id } -> Printf.sprintf "no value/assignment for circuit node %d" node_id
  | Missing_rotation_key { amount } ->
      Printf.sprintf "no Galois key reaches rotation by %d (regenerate keys or use --power-of-two keys)" amount
  | Invalid_op { reason } -> reason
  | Overloaded { queue_depth; high_water } ->
      Printf.sprintf "queue depth %d at/above high-water mark %d; request shed" queue_depth high_water
  | Deadline_exceeded { budget_ms; elapsed_ms } ->
      Printf.sprintf "deadline %.1f ms, %.1f ms elapsed" budget_ms elapsed_ms
  | Worker_crashed { worker; reason } -> Printf.sprintf "worker %d: %s" worker reason
  | Corrupt_bundle { path; reason } -> Printf.sprintf "%s: %s" path reason
  | Corrupt_frame { frame; reason } -> Printf.sprintf "%s: %s" frame reason
  | Cancelled { node_id; reason } -> (
      match node_id with
      | Some id -> Printf.sprintf "cancelled at node %d: %s" id reason
      | None -> Printf.sprintf "cancelled: %s" reason)
  | Integrity_violation { slot; expected; got } ->
      Printf.sprintf "sentinel slot %d decrypted to %.6g, reference predicts %.6g" slot got
        expected
  | Precision_exhausted { margin_bits; tolerance } ->
      Printf.sprintf "noise margin %.2f bits (error bound crossed tolerance %.3g)" margin_bits
        tolerance

(* One line, grep-able, front-loaded with the coordinates a human needs:
   where (node/layer), what op, which backend, which invariant, details. *)
let to_string (e, c) =
  let b = Buffer.create 96 in
  Buffer.add_string b "FHE error: ";
  Buffer.add_string b (error_name e);
  (match c.node_id with
  | Some id -> Buffer.add_string b (Printf.sprintf " at node %d" id)
  | None -> ());
  (match c.layer with Some l -> Buffer.add_string b (Printf.sprintf " (%s)" l) | None -> ());
  if c.op <> "" then Buffer.add_string b (Printf.sprintf " in %s" c.op);
  if c.backend <> "" then Buffer.add_string b (Printf.sprintf " [%s]" c.backend);
  Buffer.add_string b ": ";
  Buffer.add_string b (error_detail e);
  Buffer.contents b

let pp fmt ec = Format.pp_print_string fmt (to_string ec)

let to_result f = try Ok (f ()) with Fhe_error (e, c) -> Error (e, c)

(* Attach circuit coordinates to errors escaping a per-node computation.
   Errors that already carry a node id (from a nested executor) pass
   through untouched. *)
let with_node ~node_id ~layer f =
  try f ()
  with Fhe_error (e, c) when c.node_id = None ->
    raise (Fhe_error (e, { c with node_id = Some node_id; layer = Some layer }))

(* 1e-4 relative slack: kernels equalise scales only approximately (integer
   mask factors, RNS rescaling drift); value error stays well below the
   scheme noise floor. Shared so every layer agrees on "compatible". *)
let scale_tolerance = 1e-4
let scales_compatible a b = Float.abs (a -. b) <= scale_tolerance *. Float.max 1.0 (Float.max a b)

let () =
  Printexc.register_printer (function Fhe_error (e, c) -> Some (to_string (e, c)) | _ -> None)
