(* Executes a [Plan.t] against a HISA backend (DESIGN.md §14).

   [prepare] is the expensive, per-deployment half: it walks the schedule
   once, building a staged closure per step through the prepare-once kernels
   of {!Chet_runtime.Kernels.Make.Staged} — weight and mask plaintexts
   encoded up front (under a plaintext budget), geometry and shape checks
   done, accumulation dispatched through the fused HISA ops. [run] replays
   the closures over a fixed ciphertext arena; released slots are dropped
   immediately, so live ciphertext memory is bounded by the arena high-water
   mark instead of the circuit size.

   The executor computes the same per-slot arithmetic in the same order as
   the interpretive {!Chet_runtime.Executor}, so outputs are bit-identical —
   the regression gate of test/test_runtime_prop.ml. *)

module Hisa = Chet_hisa.Hisa
module Herr = Chet_hisa.Herr
module Cancel = Chet_hisa.Cancel
module Circuit = Chet_nn.Circuit
module Layout = Chet_runtime.Layout
module Kernels = Chet_runtime.Kernels
module Executor = Chet_runtime.Executor
module Tracer = Chet_obs.Tracer
module Metrics = Chet_obs.Metrics

let err ~op e = Herr.raise_err ~backend:"plan" ~op e

(* arena gauges: size of the last prepared plan's arena, and the live-slot
   high-water mark of the last plan execution *)
let arena_slots_gauge =
  lazy (Metrics.gauge Metrics.default ~help:"ciphertext arena size of the active plan" "chet_plan_arena_slots")

let arena_live_gauge =
  lazy
    (Metrics.gauge Metrics.default ~help:"live arena slots, high-water mark of the last run"
       "chet_plan_arena_live_hwm")

module Make (H : Hisa.S) = struct
  module K = Kernels.Make (H)
  module S = K.Staged

  type prepared = {
    pr_plan : Plan.t;
    pr_cfg : Kernels.scales;
    pr_execs : (K.ct_tensor option array -> K.ct_tensor -> K.ct_tensor) array;
        (** per step: (arena, external input) -> result *)
  }

  let plan prepared = prepared.pr_plan

  let prepare ?(pt_budget = 1024) cfg (plan : Plan.t) =
    if H.slots <> plan.Plan.p_slots then
      err ~op:"prepare"
        (Herr.Invalid_op
           {
             reason =
               Printf.sprintf "plan compiled for %d slots but backend has %d" plan.Plan.p_slots
                 H.slots;
           });
    (match Plan.validate plan with
    | Ok () -> ()
    | Error reason -> err ~op:"prepare" (Herr.Invalid_op { reason = "invalid plan: " ^ reason }));
    let budget = ref pt_budget in
    let mul_rescale = ref 0 and rot_acc = ref 0 and mul_acc = ref 0 in
    let slot_meta : Layout.meta option array = Array.make plan.Plan.p_arena None in
    let src_meta (st : Plan.step) i =
      match slot_meta.(st.Plan.st_srcs.(i)) with
      | Some m -> m
      | None -> assert false (* validate: every read slot is live *)
    in
    let get (arena : K.ct_tensor option array) s =
      match arena.(s) with
      | Some v -> v
      | None ->
          err ~op:"exec"
            (Herr.Invalid_op { reason = Printf.sprintf "read of released arena slot %d" s })
    in
    let of_staged (st : Plan.step) (sg : S.op) =
      mul_rescale := !mul_rescale + sg.S.sg_mul_rescale;
      rot_acc := !rot_acc + sg.S.sg_rot_acc;
      mul_acc := !mul_acc + sg.S.sg_mul_acc;
      let s0 = if Array.length st.Plan.st_srcs > 0 then st.Plan.st_srcs.(0) else -1 in
      fun arena _input -> sg.S.sg_run (get arena s0)
    in
    let execs =
      Array.map
        (fun (st : Plan.step) ->
          let exec =
            Herr.with_node ~node_id:st.Plan.st_node.Circuit.id
              ~layer:(Executor.op_name st.Plan.st_node)
              (fun () ->
                match st.Plan.st_op with
                | Plan.Op_convert k ->
                    of_staged st (S.convert cfg ~meta:(src_meta st 0) ~budget ~to_kind:k)
                | Plan.Op_node -> begin
                    match st.Plan.st_node.Circuit.op with
                    | Circuit.Input _ ->
                        let kind = st.Plan.st_kind in
                        fun _arena input ->
                          if input.K.meta.Layout.kind = kind then input
                          else K.convert cfg input ~to_kind:kind
                    | Circuit.Conv2d { weights; bias; stride; padding; _ } ->
                        of_staged st
                          (S.conv2d cfg ~meta:(src_meta st 0) ~budget ~weights ~bias ~stride
                             ~padding)
                    | Circuit.MatMul { weights; bias; _ } ->
                        of_staged st (S.matmul cfg ~meta:(src_meta st 0) ~budget ~weights ~bias)
                    | Circuit.AvgPool { ksize; stride; _ } ->
                        of_staged st (S.avg_pool cfg ~meta:(src_meta st 0) ~budget ~ksize ~stride)
                    | Circuit.GlobalAvgPool _ ->
                        of_staged st (S.global_avg_pool cfg ~meta:(src_meta st 0) ~budget)
                    | Circuit.PolyAct { a; b; _ } -> of_staged st (S.poly_act cfg ~a ~b)
                    | Circuit.Square _ -> of_staged st (S.square cfg)
                    | Circuit.BatchNorm { scale; shift; _ } ->
                        of_staged st (S.batch_norm cfg ~meta:(src_meta st 0) ~budget ~scale ~shift)
                    | Circuit.Flatten _ -> of_staged st S.flatten
                    | Circuit.Concat _ ->
                        let srcs = st.Plan.st_srcs in
                        fun arena _input ->
                          K.concat cfg (Array.to_list (Array.map (get arena) srcs))
                    | Circuit.Residual _ ->
                        let a = st.Plan.st_srcs.(0) and b = st.Plan.st_srcs.(1) in
                        fun arena _input -> K.residual (get arena a) (get arena b)
                  end)
          in
          slot_meta.(st.Plan.st_dst) <- Some st.Plan.st_meta;
          exec)
        plan.Plan.p_steps
    in
    (* fusion counts are static per plan, so overwriting (rather than
       accumulating) keeps repeated prepares — one per worker — idempotent *)
    plan.Plan.p_stats.Plan.fused_mul_rescale <- !mul_rescale;
    plan.Plan.p_stats.Plan.fused_rot_acc <- !rot_acc;
    plan.Plan.p_stats.Plan.fused_mul_acc <- !mul_acc;
    Metrics.set_gauge (Lazy.force arena_slots_gauge) (float_of_int plan.Plan.p_arena);
    { pr_plan = plan; pr_cfg = cfg; pr_execs = execs }

  let run_encrypted ?cancel prepared (input : K.ct_tensor) =
    let plan = prepared.pr_plan in
    let arena : K.ct_tensor option array = Array.make plan.Plan.p_arena None in
    let live = ref 0 and hwm = ref 0 in
    Array.iteri
      (fun i (st : Plan.step) ->
        (match cancel with
        | Some tok ->
            Cancel.check tok ~node_id:st.Plan.st_node.Circuit.id
              ~layer:(Executor.op_name st.Plan.st_node)
        | None -> ());
        let compute () =
          Herr.with_node ~node_id:st.Plan.st_node.Circuit.id
            ~layer:(Executor.op_name st.Plan.st_node)
            (fun () -> prepared.pr_execs.(i) arena input)
        in
        let result =
          (* one span per plan step when tracing is on — the plan-side twin
             of the interpretive executor's per-node spans *)
          if not (Tracer.enabled ()) then compute ()
          else
            Tracer.with_span ~cat:"plan"
              ~attrs:
                [
                  ("step", Tracer.Int st.Plan.st_id);
                  ("node_id", Tracer.Int st.Plan.st_node.Circuit.id);
                  ("layer", Tracer.Str (Executor.op_name st.Plan.st_node));
                  ("slot", Tracer.Int st.Plan.st_dst);
                ]
              (match st.Plan.st_op with
              | Plan.Op_convert Layout.HW -> "convert->HW"
              | Plan.Op_convert Layout.CHW -> "convert->CHW"
              | Plan.Op_node -> Executor.op_name st.Plan.st_node)
              (fun () ->
                let ops0 = Tracer.op_count () in
                let r = compute () in
                Tracer.annotate "ops" (Tracer.Int (Tracer.op_count () - ops0));
                r)
        in
        arena.(st.Plan.st_dst) <- Some result;
        incr live;
        if !live > !hwm then hwm := !live;
        Array.iter
          (fun s ->
            arena.(s) <- None;
            decr live)
          st.Plan.st_release)
      plan.Plan.p_steps;
    Metrics.set_gauge (Lazy.force arena_live_gauge) (float_of_int !hwm);
    match arena.(plan.Plan.p_output) with
    | Some v -> v
    | None ->
        err ~op:"run" (Herr.Invalid_op { reason = "plan output slot empty after the last step" })

  (* Full client–server roundtrip on a cleartext image, mirroring
     {!Chet_runtime.Executor.Make.run}: encrypt at the plan's input layout,
     execute, decrypt. *)
  let run ?cancel prepared image =
    let encrypted = K.encrypt_tensor prepared.pr_cfg prepared.pr_plan.Plan.p_input_meta image in
    K.decrypt_tensor (run_encrypted ?cancel prepared encrypted)
end
