(* Compiled execution plans (DESIGN.md §14).

   The interpretive executor (lib/runtime/executor.ml) walks the circuit DAG
   per request: it re-derives layout conversions, keeps every intermediate
   ciphertext alive in a hashtable until the inference ends, and re-encodes
   every weight and mask plaintext. A [Plan.t] is the compile-once answer:
   a topologically scheduled array of explicit steps over a fixed-size
   ciphertext arena, with

   - conversions materialised as their own steps (emitted on demand before
     the first consumer that needs the kind, then shared — layout conversion
     is pure, so converting once is value-identical to converting per use);
   - buffer lifetimes resolved at plan time: each step names the arena slot
     it writes and the slots that die after it, so the executor's live set
     is bounded by the arena high-water mark instead of the circuit size;
   - static layout metadata per step, recomputed (not trusted) when a plan
     is reloaded from its serialised frame.

   The plan itself is backend-free; lib/plan/plan_exec.ml instantiates it
   against a HISA backend with prepare-once staged kernels. *)

module Circuit = Chet_nn.Circuit
module Tensor = Chet_tensor.Tensor
module Herr = Chet_hisa.Herr
module Layout = Chet_runtime.Layout
module Executor = Chet_runtime.Executor
module Kernels = Chet_runtime.Kernels
module Serial = Chet_crypto.Serial

let err ~op e = Herr.raise_err ~backend:"plan" ~op e

type op =
  | Op_node  (** run the circuit node's own kernel *)
  | Op_convert of Layout.kind  (** layout-convert the node's raw value *)

type step = {
  st_id : int;  (** position in the schedule *)
  st_node : Circuit.node;  (** circuit node this step computes (or converts) *)
  st_op : op;
  st_kind : Layout.kind;  (** layout kind of the result *)
  st_srcs : int array;  (** arena slots read *)
  st_dst : int;  (** arena slot written *)
  st_release : int array;  (** slots dead after this step (never contains [st_dst]) *)
  st_meta : Layout.meta;  (** static layout of the result *)
}

type stats = {
  mutable fused_mul_rescale : int;
  mutable fused_rot_acc : int;
  mutable fused_mul_acc : int;
}

type t = {
  p_circuit : Circuit.t;
  p_policy : Executor.layout_policy;
  p_slots : int;
  p_margin : int;
  p_input_meta : Layout.meta;
  p_steps : step array;
  p_arena : int;  (** arena size = ciphertext-tensor high-water mark *)
  p_output : int;  (** arena slot holding the circuit output after the last step *)
  p_stats : stats;  (** fusion counts, filled in by [Plan_exec.prepare] *)
}

(* --- static meta inference ------------------------------------------- *)

let sources (node : Circuit.node) =
  match node.Circuit.op with
  | Circuit.Input _ -> []
  | Circuit.Conv2d { input; _ }
  | Circuit.MatMul { input; _ }
  | Circuit.AvgPool { input; _ }
  | Circuit.PolyAct { input; _ }
  | Circuit.BatchNorm { input; _ } ->
      [ input ]
  | Circuit.GlobalAvgPool n | Circuit.Square n | Circuit.Flatten n -> [ n ]
  | Circuit.Concat ns -> ns
  | Circuit.Residual (a, b) -> [ a; b ]

(* Output meta of a node given its (already layout-converted) source metas —
   must mirror the meta arithmetic of the corresponding kernels exactly. *)
let node_out_meta ~slots (node : Circuit.node) (src_metas : Layout.meta list) =
  match (node.Circuit.op, src_metas) with
  | Circuit.Conv2d { weights; stride; padding; _ }, [ m ] ->
      let cout = weights.Tensor.shape.(0) in
      let kh = weights.Tensor.shape.(2) and kw = weights.Tensor.shape.(3) in
      let _, _, out_spatial = Kernels.conv_geometry m ~kh ~kw ~stride ~padding in
      Layout.with_channels out_spatial cout
  | Circuit.MatMul { weights; _ }, [ m ] ->
      Layout.vector_meta ~slots ~length:weights.Tensor.shape.(0) ~twin:m.Layout.twin ()
  | Circuit.AvgPool { ksize; stride; _ }, [ m ] ->
      Layout.after_stride
        (Layout.with_spatial m ~height:(m.Layout.height - ksize + 1)
           ~width:(m.Layout.width - ksize + 1))
        stride
  | Circuit.GlobalAvgPool _, [ m ] -> Layout.with_spatial m ~height:1 ~width:1
  | (Circuit.PolyAct _ | Circuit.Square _ | Circuit.BatchNorm _ | Circuit.Flatten _), [ m ] -> m
  | Circuit.Concat _, (first :: _ as ms) ->
      Layout.with_channels first (List.fold_left (fun a m -> a + m.Layout.channels) 0 ms)
  | Circuit.Residual _, [ a; _ ] -> a
  | _ ->
      Herr.raise_err ~backend:"plan" ~op:"infer" ~node_id:node.Circuit.id
        ~layer:(Executor.op_name node)
        (Herr.Invalid_op { reason = "source arity mismatch in plan meta inference" })

let input_meta_of ~slots ~margin (circuit : Circuit.t) ~kind =
  let node = circuit.Circuit.input in
  match node.Circuit.shape with
  | [| c; h; w |] -> Layout.create ~kind ~slots ~channels:c ~height:h ~width:w ~margin ()
  | shape ->
      Herr.raise_err ~backend:"plan" ~op:"input_meta" ~node_id:node.Circuit.id
        ~layer:(Executor.op_name node)
        (Herr.Shape_mismatch
           {
             expected = "[c; h; w]";
             got = "[" ^ String.concat "; " (Array.to_list (Array.map string_of_int shape)) ^ "]";
           })

(* --- plan construction ------------------------------------------------ *)

(* Abstract step before slot assignment: [st_srcs] holds value ids (= step
   ids of the producing steps), rewritten to arena slots by the liveness
   pass below. *)

let build ?margin ~slots ~policy (circuit : Circuit.t) =
  let kind_of = Executor.assign policy circuit in
  let margin =
    match margin with Some m -> m | None -> Executor.required_margin circuit
  in
  let input_kind = kind_of circuit.Circuit.input in
  let in_meta = input_meta_of ~slots ~margin circuit ~kind:input_kind in
  (* 1. schedule: one step per node in topo order, conversion steps emitted
     on demand before their first consumer and shared by later ones *)
  let rev_steps = ref [] in
  let n_steps = ref 0 in
  let step_meta : (int, Layout.meta) Hashtbl.t = Hashtbl.create 64 in
  let raw : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let conv : (int * Layout.kind, int) Hashtbl.t = Hashtbl.create 16 in
  let emit node op kind srcs meta =
    let id = !n_steps in
    incr n_steps;
    rev_steps :=
      {
        st_id = id;
        st_node = node;
        st_op = op;
        st_kind = kind;
        st_srcs = Array.of_list srcs;
        st_dst = -1;
        st_release = [||];
        st_meta = meta;
      }
      :: !rev_steps;
    Hashtbl.replace step_meta id meta;
    id
  in
  let raw_id (node : Circuit.node) =
    match Hashtbl.find_opt raw node.Circuit.id with
    | Some id -> id
    | None ->
        Herr.raise_err ~backend:"plan" ~op:"build" ~node_id:node.Circuit.id
          ~layer:(Executor.op_name node)
          (Herr.Missing_node { node_id = node.Circuit.id })
  in
  let value (node : Circuit.node) ~want =
    let rid = raw_id node in
    let rmeta = Hashtbl.find step_meta rid in
    if rmeta.Layout.kind = want then rid
    else begin
      match Hashtbl.find_opt conv (node.Circuit.id, want) with
      | Some cid -> cid
      | None ->
          let cmeta = Layout.converted rmeta ~to_kind:want in
          let cid = emit node (Op_convert want) want [ rid ] cmeta in
          Hashtbl.replace conv ((node.Circuit.id, want)) cid;
          cid
    end
  in
  List.iter
    (fun (node : Circuit.node) ->
      let kind = kind_of node in
      let sid =
        match node.Circuit.op with
        | Circuit.Input _ ->
            (* the plan executor is handed an input encrypted at the kind the
               policy assigns to the input node, so this is a pass-through
               (still guarded at run time for foreign inputs) *)
            let m =
              if in_meta.Layout.kind = kind then in_meta
              else Layout.converted in_meta ~to_kind:kind
            in
            emit node Op_node kind [] m
        | Circuit.MatMul _ ->
            (* matmul reads any layout directly, like the interpretive
               executor: weight plaintexts are placed by the input's own
               metadata, no conversion step *)
            let src = List.hd (sources node) in
            let rid = raw_id src in
            let m = node_out_meta ~slots node [ Hashtbl.find step_meta rid ] in
            emit node Op_node kind [ rid ] m
        | _ ->
            let sids = List.map (fun s -> value s ~want:kind) (sources node) in
            let m =
              node_out_meta ~slots node (List.map (Hashtbl.find step_meta) sids)
            in
            emit node Op_node kind sids m
      in
      Hashtbl.replace raw node.Circuit.id sid)
    (Circuit.topo_order circuit);
  let ordered = Array.of_list (List.rev !rev_steps) in
  let n = Array.length ordered in
  if n = 0 then err ~op:"build" (Herr.Invalid_op { reason = "empty circuit" });
  let output_vid = raw_id circuit.Circuit.output in
  (* 2. liveness: last step index reading each value *)
  let last_use = Array.make n (-1) in
  Array.iter
    (fun st -> Array.iter (fun v -> last_use.(v) <- st.st_id) st.st_srcs)
    ordered;
  (* 3. slot assignment with a free list. The destination is drawn from the
     slots free *before* the step and releases are applied after it, so a
     step never overwrites a slot it still reads and [st_dst] is never in
     [st_release]. Min-index-first keeps the assignment deterministic. *)
  let module IS = Set.Make (Int) in
  let free = ref IS.empty in
  let next_slot = ref 0 in
  let slot_of_vid = Array.make n (-1) in
  let steps =
    Array.map
      (fun st ->
        let dst =
          match IS.min_elt_opt !free with
          | Some s ->
              free := IS.remove s !free;
              s
          | None ->
              let s = !next_slot in
              incr next_slot;
              s
        in
        slot_of_vid.(st.st_id) <- dst;
        let releases =
          Array.to_list st.st_srcs
          |> List.sort_uniq compare
          |> List.filter (fun v -> last_use.(v) = st.st_id && v <> output_vid)
          |> List.map (fun v -> slot_of_vid.(v))
        in
        List.iter (fun s -> free := IS.add s !free) releases;
        {
          st with
          st_srcs = Array.map (fun v -> slot_of_vid.(v)) st.st_srcs;
          st_dst = dst;
          st_release = Array.of_list releases;
        })
      ordered
  in
  {
    p_circuit = circuit;
    p_policy = policy;
    p_slots = slots;
    p_margin = margin;
    p_input_meta = in_meta;
    p_steps = steps;
    p_arena = !next_slot;
    p_output = slot_of_vid.(output_vid);
    p_stats = { fused_mul_rescale = 0; fused_rot_acc = 0; fused_mul_acc = 0 };
  }

(* --- validation -------------------------------------------------------- *)

(* Replay the schedule against a liveness bitmap: every read hits a live
   slot, no step releases its own destination, the output survives. This is
   both the arena invariant the tests assert and the schema check applied to
   deserialised plans before any ciphertext touches them. *)
let validate (t : t) =
  let problem = ref None in
  let fail r = if !problem = None then problem := Some r in
  if Array.length t.p_steps = 0 then fail "empty plan";
  if t.p_arena < 1 then fail "empty arena";
  if t.p_output < 0 || t.p_output >= t.p_arena then fail "output slot out of range";
  let live = Array.make (Stdlib.max 1 t.p_arena) false in
  Array.iteri
    (fun i st ->
      if !problem = None then begin
        if st.st_id <> i then fail (Printf.sprintf "step %d has id %d" i st.st_id);
        let check_slot what s =
          if s < 0 || s >= t.p_arena then
            fail (Printf.sprintf "step %d: %s slot %d out of range [0,%d)" i what s t.p_arena)
        in
        check_slot "destination" st.st_dst;
        Array.iter (check_slot "source") st.st_srcs;
        Array.iter (check_slot "release") st.st_release;
        if !problem = None then begin
          Array.iter
            (fun s -> if not live.(s) then fail (Printf.sprintf "step %d reads dead slot %d" i s))
            st.st_srcs;
          if live.(st.st_dst) then
            fail (Printf.sprintf "step %d overwrites live slot %d" i st.st_dst);
          live.(st.st_dst) <- true;
          Array.iter
            (fun s ->
              if s = st.st_dst then fail (Printf.sprintf "step %d releases its own destination" i);
              if not live.(s) then fail (Printf.sprintf "step %d releases dead slot %d" i s);
              live.(s) <- false)
            st.st_release
        end
      end)
    t.p_steps;
  if !problem = None && not live.(t.p_output) then fail "output slot dead after the last step";
  match !problem with None -> Ok () | Some r -> Error r

let summary (t : t) =
  let conversions =
    Array.fold_left
      (fun acc st -> match st.st_op with Op_convert _ -> acc + 1 | Op_node -> acc)
      0 t.p_steps
  in
  Printf.sprintf
    "%d steps (%d conversions), arena %d slots, fused: %d mul+rescale, %d rot-acc, %d mul-acc"
    (Array.length t.p_steps) conversions t.p_arena t.p_stats.fused_mul_rescale
    t.p_stats.fused_rot_acc t.p_stats.fused_mul_acc

(* --- serialisation: the checksummed PLAN frame ------------------------- *)

let plan_version = 1

let policy_tag = function
  | Executor.All_hw -> 0
  | Executor.All_chw -> 1
  | Executor.Hw_conv_chw_rest -> 2
  | Executor.Chw_fc_hw_before -> 3

let policy_of_tag = function
  | 0 -> Executor.All_hw
  | 1 -> Executor.All_chw
  | 2 -> Executor.Hw_conv_chw_rest
  | 3 -> Executor.Chw_fc_hw_before
  | n -> raise (Serial.Corrupt (Printf.sprintf "PLAN: unknown layout policy %d" n))

let kind_tag = function Layout.HW -> 0 | Layout.CHW -> 1

let kind_of_tag = function
  | 0 -> Layout.HW
  | 1 -> Layout.CHW
  | n -> raise (Serial.Corrupt (Printf.sprintf "PLAN: unknown layout kind %d" n))

let op_tag = function Op_node -> 0 | Op_convert k -> 1 + kind_tag k

let op_of_tag = function
  | 0 -> Op_node
  | 1 -> Op_convert Layout.HW
  | 2 -> Op_convert Layout.CHW
  | n -> raise (Serial.Corrupt (Printf.sprintf "PLAN: unknown step op %d" n))

let write w (t : t) =
  Serial.write_frame w "PLAN" (fun w ->
      Serial.write_int w plan_version;
      Serial.write_string w t.p_circuit.Circuit.name;
      Serial.write_int w (policy_tag t.p_policy);
      Serial.write_int w t.p_slots;
      Serial.write_int w t.p_margin;
      Serial.write_int w t.p_arena;
      Serial.write_int w t.p_output;
      Serial.write_int w t.p_stats.fused_mul_rescale;
      Serial.write_int w t.p_stats.fused_rot_acc;
      Serial.write_int w t.p_stats.fused_mul_acc;
      Serial.write_int w (Array.length t.p_steps);
      Array.iter
        (fun st ->
          Serial.write_int w st.st_node.Circuit.id;
          Serial.write_int w (op_tag st.st_op);
          Serial.write_int w (kind_tag st.st_kind);
          Serial.write_int w st.st_dst;
          Serial.write_int_array w st.st_srcs;
          Serial.write_int_array w st.st_release)
        t.p_steps)

(* Deserialise against a circuit the caller already has (plans never carry
   weights — the Bundle's own metadata identifies the model). The layout
   metadata is *recomputed* from the schedule, not read from the wire, and
   the result is replay-validated, so a truncated or bit-flipped frame that
   somehow survives the checksum still cannot direct a read at a released
   slot. *)
let read r ~(circuit : Circuit.t) =
  Serial.read_frame r "PLAN" (fun r ->
      let version = Serial.read_int r in
      if version <> plan_version then
        raise (Serial.Corrupt (Printf.sprintf "PLAN: version %d, expected %d" version plan_version));
      let name = Serial.read_string r in
      if name <> circuit.Circuit.name then
        raise
          (Serial.Corrupt
             (Printf.sprintf "PLAN: compiled for circuit %S, loading against %S" name
                circuit.Circuit.name));
      let policy = policy_of_tag (Serial.read_int r) in
      let slots = Serial.read_int r in
      let margin = Serial.read_int r in
      let arena = Serial.read_int r in
      let output = Serial.read_int r in
      let fused_mul_rescale = Serial.read_int r in
      let fused_rot_acc = Serial.read_int r in
      let fused_mul_acc = Serial.read_int r in
      let n = Serial.read_int r in
      if n < 0 || n > 1_000_000 then
        raise (Serial.Corrupt (Printf.sprintf "PLAN: implausible step count %d" n));
      if arena < 1 || arena > n then
        raise (Serial.Corrupt (Printf.sprintf "PLAN: implausible arena size %d" arena));
      let nodes : (int, Circuit.node) Hashtbl.t = Hashtbl.create 64 in
      List.iter
        (fun (nd : Circuit.node) -> Hashtbl.replace nodes nd.Circuit.id nd)
        (Circuit.topo_order circuit);
      let node_of id =
        match Hashtbl.find_opt nodes id with
        | Some nd -> nd
        | None -> raise (Serial.Corrupt (Printf.sprintf "PLAN: unknown circuit node %d" id))
      in
      let raw_steps =
        Array.init n (fun i ->
            let node = node_of (Serial.read_int r) in
            let op = op_of_tag (Serial.read_int r) in
            let kind = kind_of_tag (Serial.read_int r) in
            let dst = Serial.read_int r in
            let srcs = Serial.read_int_array r in
            let release = Serial.read_int_array r in
            (i, node, op, kind, dst, srcs, release))
      in
      (* recompute metas in schedule order; any structural damage surfaces
         as Corrupt here rather than as a malformed plan downstream *)
      let in_meta =
        try input_meta_of ~slots ~margin circuit ~kind:(Executor.assign policy circuit circuit.Circuit.input)
        with Herr.Fhe_error _ -> raise (Serial.Corrupt "PLAN: input layout does not fit the frame's slot count")
      in
      let slot_meta : Layout.meta option array = Array.make arena None in
      let meta_at what i s =
        match if s >= 0 && s < arena then slot_meta.(s) else None with
        | Some m -> m
        | None ->
            raise (Serial.Corrupt (Printf.sprintf "PLAN: step %d %s reads slot %d with no value" i what s))
      in
      let steps =
        Array.map
          (fun (i, node, op, kind, dst, srcs, release) ->
            let meta =
              try
                match op with
                | Op_convert k ->
                    if Array.length srcs <> 1 then
                      raise (Serial.Corrupt (Printf.sprintf "PLAN: step %d convert arity" i));
                    Layout.converted (meta_at "convert" i srcs.(0)) ~to_kind:k
                | Op_node -> begin
                    match node.Circuit.op with
                    | Circuit.Input _ ->
                        if in_meta.Layout.kind = kind then in_meta
                        else Layout.converted in_meta ~to_kind:kind
                    | _ ->
                        node_out_meta ~slots node
                          (Array.to_list (Array.mapi (fun j s -> meta_at (Printf.sprintf "source %d" j) i s) srcs))
                  end
              with Herr.Fhe_error _ ->
                raise (Serial.Corrupt (Printf.sprintf "PLAN: step %d meta inference failed" i))
            in
            if dst >= 0 && dst < arena then slot_meta.(dst) <- Some meta;
            {
              st_id = i;
              st_node = node;
              st_op = op;
              st_kind = kind;
              st_srcs = srcs;
              st_dst = dst;
              st_release = release;
              st_meta = meta;
            })
          raw_steps
      in
      let t =
        {
          p_circuit = circuit;
          p_policy = policy;
          p_slots = slots;
          p_margin = margin;
          p_input_meta = in_meta;
          p_steps = steps;
          p_arena = arena;
          p_output = output;
          p_stats = { fused_mul_rescale; fused_rot_acc; fused_mul_acc };
        }
      in
      match validate t with
      | Ok () -> t
      | Error reason -> raise (Serial.Corrupt ("PLAN: " ^ reason)))

let to_string (t : t) =
  let w = Serial.writer () in
  write w t;
  Serial.contents w

let of_string ~circuit s = read (Serial.reader s) ~circuit
