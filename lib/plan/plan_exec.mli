(** Executes a {!Plan.t} against a HISA backend (DESIGN.md §14).

    [prepare] is the expensive, per-deployment half: it stages one closure
    per step through the prepare-once kernels of
    {!Chet_runtime.Kernels.Make.Staged}, encoding weight and mask
    plaintexts up front under a plaintext budget. [run_encrypted] replays
    the closures over a fixed ciphertext arena, releasing dead slots
    immediately. Outputs are bit-identical to the interpretive
    {!Chet_runtime.Executor} (the regression gate of
    test/test_runtime_prop.ml). *)

module Cancel = Chet_hisa.Cancel
module Kernels = Chet_runtime.Kernels

module Make (H : Chet_hisa.Hisa.S) : sig
  module K : module type of Kernels.Make (H)

  type prepared
  (** A plan with its staged per-step closures and encoded plaintexts. *)

  val plan : prepared -> Plan.t

  val prepare : ?pt_budget:int -> Kernels.scales -> Plan.t -> prepared
  (** Validates the plan, checks the backend's slot count, stages every
      step, and overwrites the plan's [p_stats] fusion counts (static per
      plan, so repeated prepares — one per worker — are idempotent). *)

  val run_encrypted : ?cancel:Cancel.t -> prepared -> K.ct_tensor -> K.ct_tensor
  (** Replay the staged closures; checks [cancel] between steps and emits
      one tracer span per step when tracing is on. *)

  val run : ?cancel:Cancel.t -> prepared -> Chet_tensor.Tensor.t -> Chet_tensor.Tensor.t
  (** Full client–server roundtrip on a cleartext image: encrypt at the
      plan's input layout, execute, decrypt. *)
end
