(** Compiled execution plans (DESIGN.md §14).

    A plan is the ahead-of-time half of running a circuit: a topologically
    scheduled array of steps over a fixed ciphertext arena, with layout
    conversions made explicit, slot lifetimes precomputed (so live
    ciphertext memory is bounded by the arena high-water mark), and fusion
    opportunities counted. {!Plan_exec} stages and replays it against a
    HISA backend with outputs bit-identical to the interpretive
    {!Chet_runtime.Executor}.

    The records are deliberately transparent: the executor, the bundle
    store and the tests all inspect (and the prepare pass mutates
    [p_stats] of) a plan directly. *)

module Circuit = Chet_nn.Circuit
module Layout = Chet_runtime.Layout
module Executor = Chet_runtime.Executor

type op =
  | Op_node  (** run the circuit node's own kernel *)
  | Op_convert of Layout.kind  (** layout-convert the node's raw value *)

type step = {
  st_id : int;  (** position in the schedule *)
  st_node : Circuit.node;  (** circuit node this step computes (or converts) *)
  st_op : op;
  st_kind : Layout.kind;  (** layout kind of the result *)
  st_srcs : int array;  (** arena slots read *)
  st_dst : int;  (** arena slot written *)
  st_release : int array;  (** slots dead after this step (never contains [st_dst]) *)
  st_meta : Layout.meta;  (** static layout of the result *)
}

type stats = {
  mutable fused_mul_rescale : int;
  mutable fused_rot_acc : int;
  mutable fused_mul_acc : int;
}

type t = {
  p_circuit : Circuit.t;
  p_policy : Executor.layout_policy;
  p_slots : int;
  p_margin : int;
  p_input_meta : Layout.meta;
  p_steps : step array;
  p_arena : int;  (** arena size = ciphertext-tensor high-water mark *)
  p_output : int;  (** arena slot holding the circuit output after the last step *)
  p_stats : stats;  (** fusion counts, filled in by [Plan_exec.prepare] *)
}

val build : ?margin:int -> slots:int -> policy:Executor.layout_policy -> Circuit.t -> t
(** Schedule the circuit under the given layout policy: one step per node
    in topological order, conversion steps emitted on demand before their
    first consumer and shared by later ones, then arena slots assigned by
    a liveness pass. [margin] defaults to
    {!Executor.required_margin}. *)

val validate : t -> (unit, string) result
(** Structural soundness: schedule order, slot bounds, no read of a dead
    or released slot, output alive at the end. *)

val summary : t -> string

val to_string : t -> string
(** The checksummed PLAN frame ({!Chet_crypto.Serial} discipline). Weights
    and the circuit itself are {e not} serialized — a plan only references
    its circuit's node ids. *)

val of_string : circuit:Circuit.t -> string -> t
(** Rebind a PLAN frame to the circuit it was built from; validates the
    frame and the rebuilt plan. @raise Chet_crypto.Serial.Corrupt on
    version, checksum, id or validation mismatch. *)
