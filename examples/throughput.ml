(* Throughput vs latency (§3.2): CHET optimises single-image latency, but
   compilation and key generation amortise over many images — compile once,
   generate keys once, then stream encrypted inferences. This example runs a
   small batch through the real RNS-CKKS backend and reports the amortised
   cost breakdown.

   Run with: dune exec examples/throughput.exe *)

module Compiler = Chet.Compiler
module Executor = Chet_runtime.Executor
module Models = Chet_nn.Models
module Reference = Chet_nn.Reference
module Hisa = Chet_hisa.Hisa
module Herr = Chet_hisa.Herr
module T = Chet_tensor.Tensor

let () =
  let spec = Models.micro in
  let circuit = spec.Models.build () in
  let opts = Compiler.default_options ~target:Compiler.Seal () in

  let t0 = Unix.gettimeofday () in
  let compiled = Compiler.compile opts circuit in
  let t_compile = Unix.gettimeofday () -. t0 in

  let t0 = Unix.gettimeofday () in
  let backend = Compiler.instantiate compiled ~seed:3 ~with_secret:true () in
  let t_keygen = Unix.gettimeofday () -. t0 in

  let module H = (val backend : Hisa.S) in
  let module E = Executor.Make (H) in
  let batch = 3 in
  let correct = ref 0 in
  let failed = ref 0 in
  let t0 = Unix.gettimeofday () in
  (* per-image failure isolation — the serving layer's semantics in
     miniature: one corrupt or over-budget inference is a typed, countable
     event in the batch report, never an abort of the whole stream *)
  for i = 1 to batch do
    let image = Models.input_for spec ~seed:(100 + i) in
    match E.run opts.Compiler.scales circuit ~policy:compiled.Compiler.policy image with
    | got -> if T.argmax got = T.argmax (Reference.eval circuit image) then incr correct
    | exception Herr.Fhe_error (e, c) ->
        incr failed;
        Printf.eprintf "image %d failed: %s\n%!" i (Herr.to_string (e, c))
  done;
  let t_infer = Unix.gettimeofday () -. t0 in
  let ok = batch - !failed in
  Printf.printf
    "compile: %.1f s (once)\n\
     keygen:  %.1f s (once)\n\
     inference: %.1f s / image over %d images (%d ok, %d failed; %d/%d classes match cleartext)\n"
    t_compile t_keygen
    (t_infer /. float_of_int (Stdlib.max 1 ok))
    batch ok !failed !correct ok
